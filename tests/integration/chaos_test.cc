// Seeded chaos suite: convergence oracles under deterministic fault
// injection, across protocols × batch sizes × thread counts.
//
// Three oracles, matched to what each fault class can perturb:
//
//  1. Healed-equality — timing faults (delay jitter, cross-flow reorder)
//     never change delta *content*: per-flow FIFO is clamped, every frame
//     is delivered exactly once. A run whose schedule healed by time T must
//     therefore reach the exact fault-free fixpoint: same tables, same
//     derivation counts, same aggregates, same canonical provenance.
//  2. Loss-determinism — drop/duplicate faults on the tuple channel DO
//     corrupt bag-semantics state (a dropped retraction is simply gone), so
//     fault-free equality cannot hold. The oracle is bit-identical replay:
//     for a fixed (seed, batch) the full system fingerprint — including
//     every simulator counter — must match at any thread count, and the
//     per-channel conservation invariant must hold at quiescence.
//  3. Crash+recovery — a node crash with checkpoint restore plus neighbor
//     re-announcement must reconverge to the state of a world that never
//     crashed (including churn the crashed node missed), with no orphaned
//     provenance: every live tuple keeps at least one reachable derivation
//     whose rule execution and inputs resolve.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/provenance/rewrite.h"
#include "src/provenance/store.h"
#include "src/query/query_engine.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace {

/// MINCOST with the distance-vector "infinity" lowered to 24: bounds the
/// count-to-infinity transient when faults or crashes partition the
/// topology (same rationale as the batch-equivalence suite).
const char* kBoundedMincost = R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(cost, infinity, infinity, keys(1,2,3)).
    materialize(mincost, infinity, infinity, keys(1,2)).
    mc1 cost(@X,Y,C) :- link(@X,Y,C).
    mc2 cost(@X,Z,C) :- link(@X,Y,C1), mincost(@Y,Z,C2), X != Z,
                        C := C1 + C2, C < 24.
    mc3 mincost(@X,Z,a_min<C>) :- cost(@X,Z,C).
)";

struct Protocol {
  const char* name;
  const char* program;      // nullptr: resolved by name at runtime
  const char* route_table;  // routing table probed by the crash test
};

const Protocol kProtocols[] = {
    {"mincost", kBoundedMincost, "mincost"},
    {"pathvector", nullptr, "bestpath"},
    {"linkstate", nullptr, "spf"},
};

const char* ProgramText(const Protocol& p) {
  if (p.program != nullptr) return p.program;
  return std::string(p.name) == "linkstate" ? protocols::LinkStateProgram()
                                            : protocols::PathVectorProgram();
}

/// One running world: simulator, engines, querier (stores + services).
struct World {
  net::Simulator sim;
  net::Topology topo;
  runtime::CompiledProgramPtr prog;
  std::vector<std::unique_ptr<runtime::Engine>> engines;
  std::unique_ptr<query::ProvenanceQuerier> querier;

  World(const char* program, uint32_t batch, unsigned threads,
        const net::FaultPlan& plan) {
    Result<runtime::CompiledProgramPtr> compiled = runtime::Compile(program);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    prog = *compiled;
    topo = net::MakeRingWithChords(5, 1, 2);
    sim.set_num_threads(threads);
    if (!plan.Empty()) sim.InstallFaultPlan(plan);
    runtime::EngineOptions eopts;
    eopts.batch_size = batch;
    engines = protocols::MakeEngines(&sim, topo, prog, eopts);
    querier = std::make_unique<query::ProvenanceQuerier>(
        &sim, protocols::EnginePtrs(engines));
  }

  void Converge() {
    ASSERT_TRUE(protocols::InstallLinks(topo, &engines, &sim).ok());
    CheckHealthy();
  }

  void CheckHealthy() {
    for (const auto& e : engines) {
      ASSERT_FALSE(e->overflowed()) << e->last_error();
      EXPECT_TRUE(e->last_error().empty()) << e->last_error();
    }
  }

  /// Protocol state only: per-node tables with derivation counts plus
  /// canonical provenance graphs. Timing-faulted runs are compared to the
  /// fault-free world through this (traffic differs, state must not).
  std::string StateFingerprint() const {
    std::string out;
    for (const auto& e : engines) {
      out += "== node " + std::to_string(e->id()) + "\n";
      for (const auto& [name, info] : e->program().tables) {
        if (!info.materialized) continue;
        for (const Tuple& t : e->TableContents(name)) {
          out += t.ToString() + " x" + std::to_string(e->CountOf(t)) + "\n";
        }
      }
    }
    for (size_t i = 0; i < engines.size(); ++i) {
      out += "== prov node " + std::to_string(i) + "\n";
      out += querier->store(static_cast<NodeId>(i))->CanonicalGraph();
    }
    return out;
  }

  /// State plus every deterministic simulator counter (events, traffic,
  /// fault accounting). Loss-faulted runs must match this bit-for-bit
  /// across thread counts.
  std::string FullFingerprint() const {
    std::string out = StateFingerprint();
    out += "== sim\n";
    out += "events=" + std::to_string(sim.events_executed()) + "\n";
    const net::TrafficStats t = sim.total_traffic();
    out += "traffic=" + std::to_string(t.messages) + "/" +
           std::to_string(t.bytes) + "/" + std::to_string(t.tuples) + "\n";
    for (const auto& [name, fs] : sim.ChannelFaultStatsByName()) {
      out += name + "=" + std::to_string(fs.sent) + "/" +
             std::to_string(fs.delivered) + "/" +
             std::to_string(fs.dropped_link) + "/" +
             std::to_string(fs.dropped_fault) + "/" +
             std::to_string(fs.duplicated) + "/" +
             std::to_string(fs.delayed) + "/" +
             std::to_string(fs.reordered) + "\n";
    }
    return out;
  }

  void CheckConservation() {
    const net::ChannelFaultStats t = sim.total_fault_stats();
    EXPECT_EQ(t.sent, t.delivered + t.dropped_link + t.dropped_fault);
  }

  /// No-orphan oracle: every visible tuple of a derived user table has at
  /// least one provenance edge, and each non-self edge resolves to a known
  /// rule execution whose inputs are resolvable tuples at the executing
  /// node.
  void CheckNoOrphanedDerivations() {
    size_t checked = 0;
    for (const auto& e : engines) {
      provenance::ProvStore* store = querier->store(e->id());
      for (const auto& [name, info] : e->program().tables) {
        if (!info.materialized || info.is_base ||
            provenance::IsProvenancePredicate(name)) {
          continue;
        }
        if (name.rfind("_d") == name.size() - 2) continue;  // localized aux
        for (const Tuple& t : e->TableContents(name)) {
          const std::vector<provenance::ProvEdge>* edges =
              store->EdgesFor(t.Hash());
          ASSERT_NE(edges, nullptr) << "orphan " << t.ToString();
          ASSERT_FALSE(edges->empty()) << "orphan " << t.ToString();
          for (const provenance::ProvEdge& edge : *edges) {
            if (edge.IsSelf(t.Hash())) continue;
            const provenance::ExecEntry* exec =
                querier->store(edge.rloc)->ExecFor(edge.rid);
            ASSERT_NE(exec, nullptr)
                << "dangling exec for " << t.ToString();
            for (Vid input : exec->inputs) {
              EXPECT_NE(engines[edge.rloc]->FindTupleByVid(input), nullptr)
                  << "unresolvable input of " << t.ToString();
            }
          }
          ++checked;
        }
      }
    }
    EXPECT_GT(checked, 0u);
  }
};

net::FaultPlan TimingPlan(uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  plan.spec.delay_per_10k = 5000;
  plan.spec.delay_jitter_max = 40 * net::kMillisecond;
  plan.spec.reorder_per_10k = 3000;
  plan.spec.reorder_hold = 60 * net::kMillisecond;
  plan.heal_time = 500 * net::kMillisecond;
  return plan;
}

net::FaultPlan LossPlan(uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  plan.spec.drop_per_10k = 700;
  plan.spec.dup_per_10k = 500;
  plan.spec.delay_per_10k = 2000;
  plan.spec.delay_jitter_max = 10 * net::kMillisecond;
  return plan;
}

/// Converge under the plan, run past the heal time, then one fault-free
/// fail/recover churn round, and return the state fingerprint.
std::string RunHealedWorld(const char* program, const net::FaultPlan& plan,
                           uint32_t batch, unsigned threads) {
  World w(program, batch, threads, plan);
  w.Converge();
  w.sim.RunUntil(std::max(w.sim.now(), net::Time{500 * net::kMillisecond}));
  const net::CostedLink& l = w.topo.links[0];
  EXPECT_TRUE(
      protocols::FailLink(l.a, l.b, l.cost, &w.engines, &w.sim).ok());
  EXPECT_TRUE(
      protocols::RecoverLink(l.a, l.b, l.cost, &w.engines, &w.sim).ok());
  w.CheckHealthy();
  w.CheckConservation();
  return w.StateFingerprint();
}

TEST(ChaosTest, HealedTimingFaultsReachTheFaultFreeFixpoint) {
  for (const Protocol& proto : kProtocols) {
    const std::string reference =
        RunHealedWorld(ProgramText(proto), net::FaultPlan{}, 64, 1);
    ASSERT_FALSE(reference.empty());
    for (uint64_t seed : {7001u, 7002u, 7003u}) {
      for (uint32_t batch : {1u, 64u}) {
        for (unsigned threads : {1u, 4u}) {
          const std::string faulted = RunHealedWorld(
              ProgramText(proto), TimingPlan(seed), batch, threads);
          EXPECT_EQ(faulted, reference)
              << proto.name << " seed=" << seed << " batch=" << batch
              << " threads=" << threads
              << ": healed run diverged from the fault-free fixpoint";
        }
      }
    }
  }
}

TEST(ChaosTest, LossFaultsAreBitIdenticalAcrossThreadCounts) {
  for (const Protocol& proto : kProtocols) {
    for (uint64_t seed : {9001u, 9002u, 9003u}) {
      for (uint32_t batch : {1u, 64u}) {
        auto run = [&](unsigned threads) {
          World w(ProgramText(proto), batch, threads, LossPlan(seed));
          w.Converge();
          w.CheckConservation();
          // Loss actually happened — the determinism claim is non-vacuous.
          EXPECT_GT(w.sim.total_fault_stats().dropped_fault +
                        w.sim.total_fault_stats().duplicated,
                    0u);
          return w.FullFingerprint();
        };
        const std::string serial = run(1);
        ASSERT_FALSE(serial.empty());
        EXPECT_EQ(run(4), serial)
            << proto.name << " seed=" << seed << " batch=" << batch
            << ": threaded loss schedule diverged from serial";
      }
    }
  }
}

/// Crash node 2, churn a survivor link while it is down (so it misses both
/// the retraction and the re-derivation), restart from a checkpoint taken
/// at the converged state, and compare against a world that never crashed
/// but saw the same churn.
TEST(ChaosTest, CrashRecoveryReconvergesToTheUncrashedWorld) {
  const NodeId kVictim = 2;
  for (const Protocol& proto : kProtocols) {
    for (unsigned threads : {1u, 4u}) {
      // Reference world: no crash, same survivor churn.
      World ref(ProgramText(proto), 64, threads, net::FaultPlan{});
      ref.Converge();
      const net::CostedLink* churn = nullptr;
      for (const net::CostedLink& l : ref.topo.links) {
        if (l.a != kVictim && l.b != kVictim) {
          churn = &l;
          break;
        }
      }
      ASSERT_NE(churn, nullptr);
      ASSERT_TRUE(protocols::FailLink(churn->a, churn->b, churn->cost,
                                      &ref.engines, &ref.sim)
                      .ok());
      ASSERT_TRUE(protocols::RecoverLink(churn->a, churn->b, churn->cost,
                                         &ref.engines, &ref.sim)
                      .ok());
      ref.CheckHealthy();

      // Crashing world.
      World w(ProgramText(proto), 64, threads, net::FaultPlan{});
      w.Converge();
      // Pre-crash query homed at the victim, populating its result cache.
      std::vector<Tuple> victims_tuples =
          w.engines[kVictim]->TableContents(proto.route_table);
      ASSERT_FALSE(victims_tuples.empty());
      const Tuple probe = victims_tuples.front();
      Result<query::QueryResult> pre = w.querier->Query(probe);
      ASSERT_TRUE(pre.ok()) << pre.status().ToString();

      runtime::EngineCheckpoint ckpt =
          w.engines[kVictim]->TakeCheckpoint();
      ASSERT_TRUE(
          protocols::CrashNode(kVictim, w.topo, &w.engines, &w.sim).ok());
      EXPECT_FALSE(w.sim.NodeUp(kVictim));
      // Survivor churn the victim never hears about.
      ASSERT_TRUE(protocols::FailLink(churn->a, churn->b, churn->cost,
                                      &w.engines, &w.sim)
                      .ok());
      ASSERT_TRUE(protocols::RecoverLink(churn->a, churn->b, churn->cost,
                                         &w.engines, &w.sim)
                      .ok());
      ASSERT_TRUE(protocols::RestartNode(
                      kVictim, ckpt, w.topo, &w.engines, &w.sim,
                      [&](NodeId id) { w.querier->RestartNode(id); })
                      .ok());
      EXPECT_TRUE(w.sim.NodeUp(kVictim));
      w.CheckHealthy();
      w.CheckConservation();

      // Oracle 3a: exact reconvergence to the uncrashed world.
      EXPECT_EQ(w.StateFingerprint(), ref.StateFingerprint())
          << proto.name << " threads=" << threads
          << ": recovered world diverged from the uncrashed reference";
      // Oracle 3b: no orphaned derivations anywhere after recovery.
      w.CheckNoOrphanedDerivations();

      // Query-layer fence: the same query against the recovered node must
      // answer from the new incarnation and agree with the reference world
      // (a stale cached answer would differ or dangle).
      Result<query::QueryResult> post = w.querier->Query(probe);
      ASSERT_TRUE(post.ok()) << post.status().ToString();
      Result<query::QueryResult> ref_q = ref.querier->Query(probe);
      ASSERT_TRUE(ref_q.ok()) << ref_q.status().ToString();
      auto leaves = [](const query::QueryResult& r) {
        std::vector<std::string> v = r.leaf_tuples;
        std::sort(v.begin(), v.end());
        return v;
      };
      EXPECT_EQ(leaves(*post), leaves(*ref_q)) << proto.name;
      EXPECT_EQ(post->count, ref_q->count);
    }
  }
}

/// Crash + restore under an active timing-fault schedule: the recovered
/// world must still match the uncrashed reference once the schedule heals
/// (both worlds run the same plan, so their transients differ but their
/// fixpoints must not — and must equal each other's).
TEST(ChaosTest, CrashRecoveryUnderTimingFaults) {
  const NodeId kVictim = 1;
  for (uint64_t seed : {5001u, 5002u}) {
    auto run = [&](bool crash) {
      World w(kBoundedMincost, 64, 1, TimingPlan(seed));
      w.Converge();
      if (crash) {
        runtime::EngineCheckpoint ckpt =
            w.engines[kVictim]->TakeCheckpoint();
        EXPECT_TRUE(
            protocols::CrashNode(kVictim, w.topo, &w.engines, &w.sim).ok());
        EXPECT_TRUE(protocols::RestartNode(
                        kVictim, ckpt, w.topo, &w.engines, &w.sim,
                        [&](NodeId id) { w.querier->RestartNode(id); })
                        .ok());
      }
      w.sim.RunUntil(
          std::max(w.sim.now(), net::Time{500 * net::kMillisecond}));
      const net::CostedLink& l = w.topo.links[1];
      EXPECT_TRUE(
          protocols::FailLink(l.a, l.b, l.cost, &w.engines, &w.sim).ok());
      EXPECT_TRUE(
          protocols::RecoverLink(l.a, l.b, l.cost, &w.engines, &w.sim).ok());
      w.CheckHealthy();
      w.CheckConservation();
      if (crash) w.CheckNoOrphanedDerivations();
      return w.StateFingerprint();
    };
    const std::string uncrashed = run(false);
    ASSERT_FALSE(uncrashed.empty());
    EXPECT_EQ(run(true), uncrashed) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace nettrails
