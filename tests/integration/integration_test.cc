// End-to-end scenarios from the demonstration plan (Section 3): declarative
// networks with churn-driven incremental provenance maintenance, and the
// legacy-BGP use case (speakers -> proxy -> maybe rules -> provenance
// queries).
#include <gtest/gtest.h>

#include "src/bgp/speaker.h"
#include "src/bgp/tracegen.h"
#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/provenance/graph.h"
#include "src/provenance/rewrite.h"
#include "src/proxy/proxy.h"
#include "src/query/query_engine.h"
#include "src/runtime/plan.h"
#include "src/viz/export.h"
#include "src/viz/hypertree.h"
#include "src/viz/log_store.h"

namespace nettrails {
namespace {

// ---------- Declarative networks use case ----------

class DeclarativeChurnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<runtime::CompiledProgramPtr> prog =
        runtime::Compile(protocols::PathVectorProgram());
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    topo_ = net::MakeRingWithChords(6, 1, 2);
    engines_ = protocols::MakeEngines(&sim_, topo_, *prog);
    querier_ = std::make_unique<query::ProvenanceQuerier>(
        &sim_, protocols::EnginePtrs(engines_));
    ASSERT_TRUE(protocols::InstallLinks(topo_, &engines_, &sim_).ok());
  }

  net::Simulator sim_;
  net::Topology topo_;
  std::vector<std::unique_ptr<runtime::Engine>> engines_;
  std::unique_ptr<query::ProvenanceQuerier> querier_;
};

TEST_F(DeclarativeChurnTest, ProvenanceTracksIncrementalRecomputation) {
  // Pick a live bestpath tuple and query its lineage.
  std::vector<Tuple> bestpaths = engines_[0]->TableContents("bestpath");
  ASSERT_FALSE(bestpaths.empty());
  Tuple target = bestpaths[0];
  query::QueryOptions opts;
  opts.type = query::QueryType::kLineage;
  Result<query::QueryResult> before = querier_->Query(target, opts);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_FALSE(before->leaf_tuples.empty());

  // Fail every link used by this path: the tuple must disappear AND its
  // provenance must be retracted.
  const ValueList& hops = target.field(3).as_list();
  for (size_t i = 0; i + 1 < hops.size(); ++i) {
    NodeId a = hops[i].as_address();
    NodeId b = hops[i + 1].as_address();
    int64_t cost = 0;
    for (const net::CostedLink& l : topo_.links) {
      if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) cost = l.cost;
    }
    ASSERT_TRUE(protocols::FailLink(a, b, cost, &engines_, &sim_).ok());
  }
  EXPECT_FALSE(engines_[0]->HasTuple(target));
  // Its prov edges are gone from the home node's store.
  EXPECT_EQ(querier_->store(0)->EdgesFor(target.Hash()), nullptr);
}

TEST_F(DeclarativeChurnTest, QueriesConsistentAfterRecovery) {
  std::vector<Tuple> bestpaths = engines_[0]->TableContents("bestpath");
  ASSERT_FALSE(bestpaths.empty());
  Tuple target = bestpaths[0];
  query::QueryOptions opts;
  opts.type = query::QueryType::kDerivCount;
  opts.use_cache = false;
  Result<query::QueryResult> before = querier_->Query(target, opts);
  ASSERT_TRUE(before.ok());

  // Flap an uninvolved link; the tuple's derivation count is unchanged.
  ASSERT_TRUE(protocols::FailLink(2, 3, 1, &engines_, &sim_).ok());
  ASSERT_TRUE(protocols::RecoverLink(2, 3, 1, &engines_, &sim_).ok());
  if (engines_[0]->HasTuple(target)) {
    Result<query::QueryResult> after = querier_->Query(target, opts);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->count, before->count);
  }
}

// ---------- Full pipeline: protocol -> log store -> graph -> hypertree ----

TEST(PipelineTest, SnapshotSelectTupleExploreProvenance) {
  // The Figure 2 interaction: snapshot the system, select a table, locate a
  // tuple, explore its provenance as a hypertree.
  net::Simulator sim;
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::MincostProgram());
  ASSERT_TRUE(prog.ok());
  net::Topology topo = net::MakeRingWithChords(6, 1, 3);
  auto engines = protocols::MakeEngines(&sim, topo, *prog);
  query::ProvenanceQuerier querier(&sim, protocols::EnginePtrs(engines));
  viz::LogStore log(&sim, protocols::EnginePtrs(engines));
  ASSERT_TRUE(protocols::InstallLinks(topo, &engines, &sim).ok());
  log.CaptureNow();

  // (a) system snapshot exists; (b) select the mincost table at node 0.
  std::vector<Tuple> mincosts = log.TableAt(sim.now(), 0, "mincost");
  ASSERT_FALSE(mincosts.empty());
  // (c) locate one tuple and build its provenance graph.
  Tuple target = mincosts[0];
  std::vector<const provenance::ProvStore*> stores;
  for (size_t i = 0; i < engines.size(); ++i) {
    stores.push_back(querier.store(static_cast<NodeId>(i)));
  }
  provenance::Graph graph = provenance::BuildGraph(
      stores, target.Location(), target.Hash(),
      [&](Vid vid) { return querier.RenderVid(vid); });
  EXPECT_GT(graph.vertices.size(), 1u);

  // Hypertree exploration with smooth refocus.
  viz::Hypertree ht(graph);
  EXPECT_EQ(ht.size(), graph.vertices.size());
  std::vector<Vid> children = graph.ChildrenOf(graph.root);
  ASSERT_FALSE(children.empty());
  auto frames = ht.TransitionFrames(children[0], 5);
  EXPECT_EQ(frames.size(), 5u);

  // Exports are consistent with the graph.
  std::string dot = viz::ToDot(graph);
  EXPECT_NE(dot.find("mincost("), std::string::npos);
  std::string tree = viz::ToTextTree(graph);
  EXPECT_NE(tree.find("link("), std::string::npos);
}

// ---------- Legacy applications use case ----------

TEST(BgpIntegrationTest, TraceReplayThroughProxyYieldsQueryableProvenance) {
  net::Simulator sim;
  Rng rng(99);
  bgp::AsTopology topo = bgp::MakeAsTopology(2, 3, 4, &rng);
  topo.Install(&sim);

  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::BgpMaybeProgram());
  ASSERT_TRUE(prog.ok());

  std::vector<std::unique_ptr<runtime::Engine>> engines;
  std::vector<std::unique_ptr<proxy::Proxy>> proxies;
  std::vector<std::unique_ptr<bgp::Speaker>> speakers;
  for (size_t i = 0; i < topo.num_ases; ++i) {
    engines.push_back(std::make_unique<runtime::Engine>(
        &sim, static_cast<NodeId>(i), *prog));
    proxies.push_back(std::make_unique<proxy::Proxy>(engines.back().get()));
    speakers.push_back(std::make_unique<bgp::Speaker>(
        &sim, static_cast<NodeId>(i), proxies.back().get()));
  }
  for (const bgp::AsLink& l : topo.links) {
    speakers[l.a]->AddNeighbor(l.b, l.relation);
    speakers[l.b]->AddNeighbor(l.a, bgp::Reverse(l.relation));
  }
  query::ProvenanceQuerier querier(&sim, protocols::EnginePtrs(engines));

  std::vector<bgp::TraceEvent> trace = bgp::GenerateTrace(topo, 10, &rng);
  for (const bgp::TraceEvent& ev : trace) {
    sim.ScheduleAt(ev.time, [&speakers, ev]() {
      if (ev.withdraw) {
        speakers[ev.origin]->Withdraw(ev.prefix);
      } else {
        speakers[ev.origin]->Originate(ev.prefix);
      }
    });
  }
  sim.Run();

  // Every AS that selected a route for some announced prefix produced
  // outputRoute tuples through the proxy; find one with maybe provenance.
  bool found_queryable = false;
  for (size_t i = 0; i < engines.size() && !found_queryable; ++i) {
    for (const Tuple& out : engines[i]->TableContents("outputRoute")) {
      // Transit outputs (path length > 1) must have a maybe cause.
      if (out.field(3).as_list().size() < 2) continue;
      query::QueryOptions opts;
      opts.type = query::QueryType::kLineage;
      Result<query::QueryResult> r = querier.Query(out, opts);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      if (!r->leaf_tuples.empty()) {
        // The lineage bottoms out in inputRoute state at some AS.
        bool has_input_leaf = false;
        for (const std::string& leaf : r->leaf_tuples) {
          if (leaf.rfind("inputRoute(", 0) == 0) has_input_leaf = true;
        }
        EXPECT_TRUE(has_input_leaf)
            << "leaves of " << out.ToString() << " lack inputRoute";
        found_queryable = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_queryable)
      << "no transit outputRoute with queryable provenance found";
}

TEST(BgpIntegrationTest, WithdrawalRetractsDerivedProvenance) {
  // Minimal 2-AS setup: stub 1 announces to provider 0; 0 re-exports.
  net::Simulator sim;
  sim.AddNode();
  sim.AddNode();
  sim.AddNode();
  sim.AddLink(0, 1);
  sim.AddLink(0, 2);
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::BgpMaybeProgram());
  ASSERT_TRUE(prog.ok());
  std::vector<std::unique_ptr<runtime::Engine>> engines;
  std::vector<std::unique_ptr<proxy::Proxy>> proxies;
  std::vector<std::unique_ptr<bgp::Speaker>> speakers;
  for (NodeId i = 0; i < 3; ++i) {
    engines.push_back(std::make_unique<runtime::Engine>(&sim, i, *prog));
    proxies.push_back(std::make_unique<proxy::Proxy>(engines.back().get()));
    speakers.push_back(
        std::make_unique<bgp::Speaker>(&sim, i, proxies.back().get()));
  }
  speakers[0]->AddNeighbor(1, bgp::Relation::kCustomer);
  speakers[0]->AddNeighbor(2, bgp::Relation::kCustomer);
  speakers[1]->AddNeighbor(0, bgp::Relation::kProvider);
  speakers[2]->AddNeighbor(0, bgp::Relation::kProvider);

  speakers[1]->Originate(100);
  sim.Run();
  // AS 0 exported the customer route to AS 2.
  const runtime::Table* out_table = engines[0]->GetTable("outputRoute");
  ASSERT_NE(out_table, nullptr);
  ASSERT_GE(out_table->size(), 1u);

  speakers[1]->Withdraw(100);
  sim.Run();
  EXPECT_EQ(engines[0]->GetTable("outputRoute")->size(), 0u);
  EXPECT_EQ(engines[0]->GetTable("inputRoute")->size(), 0u);
  // All maybe provenance retracted with the state.
  for (const Tuple& t :
       engines[0]->TableContents(provenance::kProvTable)) {
    EXPECT_FALSE(t.field(4).Truthy())
        << "stale maybe edge " << t.ToString();
  }
}

}  // namespace
}  // namespace nettrails
