// Property-based provenance invariants, swept over protocols and
// topologies with parameterized tests:
//   I1. Every visible derived tuple has at least one provenance edge, and
//       its derivation count matches the tuple's stored count.
//   I2. Every prov edge points to a resolvable rule execution whose inputs
//       are (or were) known tuples.
//   I3. Lineage queries bottom out exclusively in base tuples.
//   I4. The derivation-count query equals the engine's stored count for
//       counting tables.
//   I5. After deleting all base tuples, all derived state and all
//       provenance is retracted.
#include <gtest/gtest.h>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/provenance/rewrite.h"
#include "src/query/query_engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace {

struct SweepParam {
  const char* name;
  const char* program;
  // Topology generator (kind + size) kept simple for value-param printing.
  enum Kind { kLine, kRing, kChords, kRandom } kind;
  size_t n;
  uint64_t seed;
  // Table whose derivation closure contains no aggregates (exact-count
  // check); nullptr skips the check. Aggregate vertices count each winning
  // contribution as a derivation, so exact equality with the stored bag
  // count only holds aggregate-free.
  const char* exact_count_table = nullptr;
};

net::Topology MakeTopo(const SweepParam& p) {
  switch (p.kind) {
    case SweepParam::kLine:
      return net::MakeLine(p.n, 1);
    case SweepParam::kRing:
      return net::MakeRing(p.n, 1);
    case SweepParam::kChords:
      return net::MakeRingWithChords(p.n, 1, 2);
    case SweepParam::kRandom: {
      Rng rng(p.seed);
      return net::MakeRandomConnected(p.n, 0.15, &rng);
    }
  }
  return net::MakeLine(2, 1);
}

class ProvenanceInvariants : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    Result<runtime::CompiledProgramPtr> prog =
        runtime::Compile(GetParam().program);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    prog_ = *prog;
    topo_ = MakeTopo(GetParam());
    engines_ = protocols::MakeEngines(&sim_, topo_, prog_);
    querier_ = std::make_unique<query::ProvenanceQuerier>(
        &sim_, protocols::EnginePtrs(engines_));
    ASSERT_TRUE(protocols::InstallLinks(topo_, &engines_, &sim_).ok());
    for (const auto& e : engines_) {
      ASSERT_FALSE(e->overflowed()) << e->last_error();
    }
  }

  bool IsUserTable(const std::string& name) {
    return !provenance::IsProvenancePredicate(name) &&
           name.rfind("_d") != name.size() - 2;
  }

  // Derived (non-base) user tables of the program.
  std::vector<std::string> DerivedTables() {
    std::vector<std::string> out;
    for (const auto& [name, info] : prog_->tables) {
      if (info.materialized && !info.is_base &&
          !provenance::IsProvenancePredicate(name)) {
        out.push_back(name);
      }
    }
    return out;
  }

  runtime::CompiledProgramPtr prog_;
  net::Simulator sim_;
  net::Topology topo_;
  std::vector<std::unique_ptr<runtime::Engine>> engines_;
  std::unique_ptr<query::ProvenanceQuerier> querier_;
};

TEST_P(ProvenanceInvariants, DerivedTuplesHaveProvenanceEdges) {
  size_t checked = 0;
  for (const auto& engine : engines_) {
    provenance::ProvStore* store = querier_->store(engine->id());
    for (const std::string& table : DerivedTables()) {
      for (const Tuple& t : engine->TableContents(table)) {
        const std::vector<provenance::ProvEdge>* edges =
            store->EdgesFor(t.Hash());
        ASSERT_NE(edges, nullptr) << t.ToString();
        ASSERT_FALSE(edges->empty()) << t.ToString();
        // I1: for counting tables, edge multiplicity sums to the tuple's
        // derivation count. (Aggregate outputs keep one stored tuple but
        // one edge per winning contribution, so only >= 1 is required.)
        const ndlog::TableInfo* info = prog_->FindTable(table);
        if (info != nullptr && info->KeysCoverAllFields()) {
          int64_t total = 0;
          for (const provenance::ProvEdge& e : *edges) total += e.count;
          EXPECT_EQ(total, engine->CountOf(t)) << t.ToString();
        }
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(ProvenanceInvariants, EdgesResolveToKnownExecutions) {
  for (const auto& engine : engines_) {
    provenance::ProvStore* store = querier_->store(engine->id());
    for (Vid vid : store->AllVids()) {
      for (const provenance::ProvEdge& e : *store->EdgesFor(vid)) {
        if (e.IsSelf(vid)) continue;
        const provenance::ExecEntry* exec =
            querier_->store(e.rloc)->ExecFor(e.rid);
        ASSERT_NE(exec, nullptr) << "dangling exec edge";
        EXPECT_FALSE(exec->rule.empty());
        // I2: inputs are known tuples at the executing node.
        for (Vid input : exec->inputs) {
          EXPECT_NE(engines_[e.rloc]->FindTupleByVid(input), nullptr);
        }
      }
    }
  }
}

TEST_P(ProvenanceInvariants, LineageBottomsOutInBaseTuples) {
  // Sample a handful of derived tuples per node.
  query::QueryOptions opts;
  opts.type = query::QueryType::kLineage;
  size_t queried = 0;
  for (const auto& engine : engines_) {
    for (const std::string& table : DerivedTables()) {
      std::vector<Tuple> tuples = engine->TableContents(table);
      if (tuples.empty()) continue;
      const Tuple& t = tuples[tuples.size() / 2];
      Result<query::QueryResult> r = querier_->Query(t, opts);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_FALSE(r->leaf_tuples.empty()) << t.ToString();
      for (const std::string& leaf : r->leaf_tuples) {
        // I3: all leaves are base (link) tuples for the routing protocols.
        EXPECT_EQ(leaf.rfind("link(", 0), 0u)
            << "non-base leaf " << leaf << " for " << t.ToString();
      }
      ++queried;
      if (queried > 8) return;  // bounded work per sweep point
    }
  }
}

TEST_P(ProvenanceInvariants, CountQueryMatchesStoredCounts) {
  if (GetParam().exact_count_table == nullptr) {
    GTEST_SKIP() << "no aggregate-free table for this program";
  }
  const std::string table = GetParam().exact_count_table;
  query::QueryOptions opts;
  opts.type = query::QueryType::kDerivCount;
  opts.use_cache = false;
  size_t queried = 0;
  for (const auto& engine : engines_) {
    for (const Tuple& t : engine->TableContents(table)) {
      Result<query::QueryResult> r = querier_->Query(t, opts);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->count, engine->CountOf(t)) << t.ToString();
      if (++queried > 12) return;
    }
  }
}

TEST_P(ProvenanceInvariants, FullTeardownRetractsEverything) {
  // I5: delete every link tuple; all derived state and provenance vanish.
  for (const net::CostedLink& l : topo_.links) {
    ASSERT_TRUE(protocols::FailLink(l.a, l.b, l.cost, &engines_, &sim_,
                                    /*run_to_quiescence=*/false)
                    .ok());
  }
  sim_.Run();
  for (const auto& engine : engines_) {
    ASSERT_FALSE(engine->overflowed()) << engine->last_error();
    for (const auto& [name, info] : prog_->tables) {
      if (!info.materialized) continue;
      EXPECT_EQ(engine->TableContents(name).size(), 0u)
          << "node " << engine->id() << " table " << name << " not empty";
    }
    provenance::ProvStore* store = querier_->store(engine->id());
    EXPECT_EQ(store->edge_count(), 0u);
    EXPECT_EQ(store->exec_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MincostSweep, ProvenanceInvariants,
    ::testing::Values(
        SweepParam{"line4", protocols::MincostProgram(), SweepParam::kLine, 4,
                   0},
        SweepParam{"ring5", protocols::MincostProgram(), SweepParam::kRing, 5,
                   0},
        SweepParam{"chords6", protocols::MincostProgram(),
                   SweepParam::kChords, 6, 0},
        SweepParam{"rand8a", protocols::MincostProgram(), SweepParam::kRandom,
                   8, 11},
        SweepParam{"rand8b", protocols::MincostProgram(), SweepParam::kRandom,
                   8, 22}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string("mincost_") + info.param.name;
    });

INSTANTIATE_TEST_SUITE_P(
    PathVectorSweep, ProvenanceInvariants,
    ::testing::Values(
        SweepParam{"line4", protocols::PathVectorProgram(), SweepParam::kLine,
                   4, 0, "path"},
        SweepParam{"ring5", protocols::PathVectorProgram(), SweepParam::kRing,
                   5, 0, "path"},
        SweepParam{"chords6", protocols::PathVectorProgram(),
                   SweepParam::kChords, 6, 0, "path"},
        SweepParam{"rand7", protocols::PathVectorProgram(),
                   SweepParam::kRandom, 7, 33, "path"}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string("pv_") + info.param.name;
    });

}  // namespace
}  // namespace nettrails
