#include "src/proxy/maybe_matcher.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/rand.h"
#include "src/protocols/programs.h"
#include "src/provenance/rewrite.h"
#include "src/runtime/builtins.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace proxy {
namespace {

RouteMessage Msg(NodeId peer, int64_t prefix, std::vector<NodeId> path,
                 bool withdraw = false) {
  return {peer, prefix, std::move(path), withdraw};
}

TEST(MaybeMatcherTest, IsExtendPositive) {
  EXPECT_TRUE(IsExtend(7, Msg(1, 100, {3, 5}), Msg(2, 100, {7, 3, 5})));
  EXPECT_TRUE(IsExtend(7, Msg(1, 100, {}), Msg(2, 100, {7})));
}

TEST(MaybeMatcherTest, IsExtendRejectsWrongPrefix) {
  EXPECT_FALSE(IsExtend(7, Msg(1, 100, {3}), Msg(2, 200, {7, 3})));
}

TEST(MaybeMatcherTest, IsExtendRejectsWrongHead) {
  EXPECT_FALSE(IsExtend(7, Msg(1, 100, {3}), Msg(2, 100, {8, 3})));
}

TEST(MaybeMatcherTest, IsExtendRejectsWrongSuffix) {
  EXPECT_FALSE(IsExtend(7, Msg(1, 100, {3, 5}), Msg(2, 100, {7, 5, 3})));
}

TEST(MaybeMatcherTest, IsExtendRejectsWrongLength) {
  EXPECT_FALSE(IsExtend(7, Msg(1, 100, {3}), Msg(2, 100, {7, 3, 5})));
  EXPECT_FALSE(IsExtend(7, Msg(1, 100, {3}), Msg(2, 100, {3})));
}

TEST(MaybeMatcherTest, IsExtendRejectsWithdrawals) {
  EXPECT_FALSE(IsExtend(7, Msg(1, 100, {3}, true), Msg(2, 100, {7, 3})));
  EXPECT_FALSE(IsExtend(7, Msg(1, 100, {3}), Msg(2, 100, {7, 3}, true)));
}

TEST(MaybeMatcherTest, MatchFindsAllPairs) {
  std::vector<RouteMessage> inputs = {
      Msg(1, 100, {3, 5}),
      Msg(2, 100, {4}),
      Msg(3, 200, {9}),
  };
  std::vector<RouteMessage> outputs = {
      Msg(8, 100, {7, 3, 5}),  // matches input 0
      Msg(8, 100, {7, 4}),     // matches input 1
      Msg(8, 200, {7, 9}),     // matches input 2
      Msg(8, 200, {7, 8}),     // matches nothing
  };
  std::vector<MaybeMatch> matches = MatchMaybe(7, inputs, outputs);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].output_index, 0u);
  EXPECT_EQ(matches[0].input_index, 0u);
  EXPECT_EQ(matches[1].output_index, 1u);
  EXPECT_EQ(matches[1].input_index, 1u);
  EXPECT_EQ(matches[2].output_index, 2u);
  EXPECT_EQ(matches[2].input_index, 2u);
}

TEST(MaybeMatcherTest, AmbiguousInputsYieldMultipleMatches) {
  // Two identical announcements from different peers both explain the
  // output ("maybe" semantics: possible causes, not certain ones).
  std::vector<RouteMessage> inputs = {Msg(1, 100, {3}), Msg(2, 100, {3})};
  std::vector<RouteMessage> outputs = {Msg(8, 100, {7, 3})};
  EXPECT_EQ(MatchMaybe(7, inputs, outputs).size(), 2u);
}

TEST(MaybeMatcherTest, EmptyStreamsNoMatches) {
  EXPECT_TRUE(MatchMaybe(7, {}, {}).empty());
  EXPECT_TRUE(MatchMaybe(7, {Msg(1, 100, {3})}, {}).empty());
}

// Property test: the engine's declarative br1 inference over randomized
// message streams agrees exactly with the quadratic reference matcher —
// same set of (input, output) causal pairs, expressed as maybe prov edges.
class MaybeCrossValidation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaybeCrossValidation, EngineMatchesReference) {
  Rng rng(GetParam());
  const NodeId self = 0;

  // Random streams: inputs from a few peers, outputs that sometimes extend
  // an input (true cause), sometimes extend a mangled path (no cause).
  std::vector<RouteMessage> inputs, outputs;
  for (int i = 0; i < 12; ++i) {
    RouteMessage in;
    in.peer = static_cast<NodeId>(1 + rng.NextBelow(3));
    in.prefix = static_cast<int64_t>(100 + rng.NextBelow(4));
    size_t hops = 1 + rng.NextBelow(3);
    for (size_t h = 0; h < hops; ++h) {
      in.path.push_back(static_cast<NodeId>(3 + rng.NextBelow(6)));
    }
    inputs.push_back(in);
  }
  for (int o = 0; o < 10; ++o) {
    const RouteMessage& base = inputs[rng.NextBelow(inputs.size())];
    RouteMessage out;
    out.peer = static_cast<NodeId>(10 + rng.NextBelow(3));
    out.prefix = base.prefix;
    out.path.push_back(self);
    for (NodeId hop : base.path) out.path.push_back(hop);
    if (rng.NextBool(0.4)) out.path.push_back(99);  // mangle: no cause
    outputs.push_back(out);
  }

  // Reference matcher, de-duplicated to distinct (input tuple, output
  // tuple) pairs as the engine sees them (replacement semantics: only the
  // LAST announcement per (peer, prefix) is live state).
  std::map<std::pair<NodeId, int64_t>, RouteMessage> live_in, live_out;
  for (const RouteMessage& m : inputs) live_in[{m.peer, m.prefix}] = m;
  for (const RouteMessage& m : outputs) live_out[{m.peer, m.prefix}] = m;
  std::vector<RouteMessage> last_inputs, last_outputs;
  for (const auto& [key, m] : live_in) last_inputs.push_back(m);
  for (const auto& [key, m] : live_out) last_outputs.push_back(m);
  std::vector<MaybeMatch> expected =
      MatchMaybe(self, last_inputs, last_outputs);

  // Engine run through the proxy.
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::BgpMaybeProgram());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  net::Simulator sim;
  sim.AddNode();
  runtime::Engine engine(&sim, self, *prog);
  Proxy proxy(&engine);
  for (const RouteMessage& m : inputs) ASSERT_TRUE(proxy.OnIncoming(m).ok());
  for (const RouteMessage& m : outputs) ASSERT_TRUE(proxy.OnOutgoing(m).ok());
  sim.Run();

  // Collect engine-inferred maybe pairs (output vid <- exec <- input vid).
  std::set<std::pair<Vid, Vid>> engine_pairs;
  std::map<Vid, Vid> exec_input;  // rid -> single input vid
  for (const Tuple& t : engine.TableContents(provenance::kRuleExecTable)) {
    if (t.field(3).is_list() && t.field(3).as_list().size() == 1) {
      exec_input[runtime::ValueToVid(t.field(1))] =
          runtime::ValueToVid(t.field(3).as_list()[0]);
    }
  }
  for (const Tuple& t : engine.TableContents(provenance::kProvTable)) {
    if (!t.field(4).Truthy()) continue;  // maybe edges only
    auto it = exec_input.find(runtime::ValueToVid(t.field(2)));
    ASSERT_NE(it, exec_input.end());
    engine_pairs.insert({runtime::ValueToVid(t.field(1)), it->second});
  }

  std::set<std::pair<Vid, Vid>> expected_pairs;
  for (const MaybeMatch& m : expected) {
    Tuple out = proxy.ToTuple("outputRoute", last_outputs[m.output_index]);
    Tuple in = proxy.ToTuple("inputRoute", last_inputs[m.input_index]);
    expected_pairs.insert({out.Hash(), in.Hash()});
  }
  EXPECT_EQ(engine_pairs, expected_pairs) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaybeCrossValidation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace proxy
}  // namespace nettrails
