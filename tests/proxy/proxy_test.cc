#include "src/proxy/proxy.h"

#include <gtest/gtest.h>

#include "src/protocols/programs.h"
#include "src/provenance/rewrite.h"
#include "src/query/query_engine.h"
#include "src/runtime/builtins.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace proxy {
namespace {

class ProxyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<runtime::CompiledProgramPtr> prog =
        runtime::Compile(protocols::BgpMaybeProgram());
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    sim_.AddNode();
    engine_ = std::make_unique<runtime::Engine>(&sim_, 0, *prog);
    proxy_ = std::make_unique<Proxy>(engine_.get());
  }

  net::Simulator sim_;
  std::unique_ptr<runtime::Engine> engine_;
  std::unique_ptr<Proxy> proxy_;
};

TEST_F(ProxyTest, IncomingAnnouncementBecomesInputRoute) {
  ASSERT_TRUE(proxy_->OnIncoming({5, 100, {5, 9}, false}).ok());
  sim_.Run();
  Tuple expect("inputRoute",
               {Value::Address(0), Value::Address(5), Value::Int(100),
                Value::List({Value::Address(5), Value::Address(9)})});
  EXPECT_TRUE(engine_->HasTuple(expect));
  EXPECT_EQ(proxy_->incoming_seen(), 1u);
}

TEST_F(ProxyTest, OutgoingAnnouncementBecomesOutputRoute) {
  ASSERT_TRUE(proxy_->OnOutgoing({3, 100, {0, 5, 9}, false}).ok());
  sim_.Run();
  Tuple expect("outputRoute",
               {Value::Address(0), Value::Address(3), Value::Int(100),
                Value::List({Value::Address(0), Value::Address(5),
                             Value::Address(9)})});
  EXPECT_TRUE(engine_->HasTuple(expect));
}

TEST_F(ProxyTest, ReannouncementReplacesPerPeerPrefix) {
  ASSERT_TRUE(proxy_->OnIncoming({5, 100, {5, 9}, false}).ok());
  ASSERT_TRUE(proxy_->OnIncoming({5, 100, {5, 7, 9}, false}).ok());
  sim_.Run();
  const runtime::Table* table = engine_->GetTable("inputRoute");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->size(), 1u);
  Tuple latest("inputRoute",
               {Value::Address(0), Value::Address(5), Value::Int(100),
                Value::List({Value::Address(5), Value::Address(7),
                             Value::Address(9)})});
  EXPECT_TRUE(engine_->HasTuple(latest));
}

TEST_F(ProxyTest, WithdrawDeletesCurrentRoute) {
  ASSERT_TRUE(proxy_->OnIncoming({5, 100, {5, 9}, false}).ok());
  ASSERT_TRUE(proxy_->OnIncoming({5, 100, {}, true}).ok());
  sim_.Run();
  EXPECT_EQ(engine_->GetTable("inputRoute")->size(), 0u);
}

TEST_F(ProxyTest, WithdrawOfUnknownRouteIgnored) {
  EXPECT_TRUE(proxy_->OnIncoming({5, 100, {}, true}).ok());
  EXPECT_EQ(engine_->GetTable("inputRoute")->size(), 0u);
}

TEST_F(ProxyTest, DistinctPeersAndPrefixesCoexist) {
  ASSERT_TRUE(proxy_->OnIncoming({5, 100, {5}, false}).ok());
  ASSERT_TRUE(proxy_->OnIncoming({6, 100, {6}, false}).ok());
  ASSERT_TRUE(proxy_->OnIncoming({5, 200, {5}, false}).ok());
  sim_.Run();
  EXPECT_EQ(engine_->GetTable("inputRoute")->size(), 3u);
}

TEST_F(ProxyTest, MaybeRuleInfersCausalEdge) {
  // Input [5,9] then output [0,5,9]: f_isExtend holds, so the maybe rule
  // must produce a maybe-flagged prov edge for the output tuple.
  ASSERT_TRUE(proxy_->OnIncoming({5, 100, {5, 9}, false}).ok());
  ASSERT_TRUE(proxy_->OnOutgoing({3, 100, {0, 5, 9}, false}).ok());
  sim_.Run();
  Tuple output("outputRoute",
               {Value::Address(0), Value::Address(3), Value::Int(100),
                Value::List({Value::Address(0), Value::Address(5),
                             Value::Address(9)})});
  ASSERT_TRUE(engine_->HasTuple(output));
  bool found_maybe = false;
  for (const Tuple& t :
       engine_->TableContents(provenance::kProvTable)) {
    if (runtime::ValueToVid(t.field(1)) == output.Hash() &&
        t.field(4).Truthy()) {
      found_maybe = true;
    }
  }
  EXPECT_TRUE(found_maybe);
}

TEST_F(ProxyTest, NoMaybeEdgeWithoutMatchingInput) {
  ASSERT_TRUE(proxy_->OnIncoming({5, 100, {5, 9}, false}).ok());
  // Output path does not extend the input path.
  ASSERT_TRUE(proxy_->OnOutgoing({3, 100, {0, 7}, false}).ok());
  sim_.Run();
  Tuple output("outputRoute",
               {Value::Address(0), Value::Address(3), Value::Int(100),
                Value::List({Value::Address(0), Value::Address(7)})});
  for (const Tuple& t :
       engine_->TableContents(provenance::kProvTable)) {
    EXPECT_NE(runtime::ValueToVid(t.field(1)), output.Hash())
        << "unexpected prov edge " << t.ToString();
  }
}

TEST_F(ProxyTest, NoMaybeQueriesIgnoreInferredEdges) {
  ASSERT_TRUE(proxy_->OnIncoming({5, 100, {5, 9}, false}).ok());
  ASSERT_TRUE(proxy_->OnOutgoing({3, 100, {0, 5, 9}, false}).ok());
  sim_.Run();
  Tuple output("outputRoute",
               {Value::Address(0), Value::Address(3), Value::Int(100),
                Value::List({Value::Address(0), Value::Address(5),
                             Value::Address(9)})});
  query::ProvenanceQuerier querier(&sim_, {engine_.get()});
  query::QueryOptions with_maybe;
  with_maybe.type = query::QueryType::kLineage;
  with_maybe.include_maybe = true;
  Result<query::QueryResult> a = querier.Query(output, with_maybe);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  bool saw_input = false;
  for (const std::string& leaf : a->leaf_tuples) {
    if (leaf.rfind("inputRoute(", 0) == 0) saw_input = true;
  }
  EXPECT_TRUE(saw_input);

  query::QueryOptions no_maybe = with_maybe;
  no_maybe.include_maybe = false;
  Result<query::QueryResult> b = querier.Query(output, no_maybe);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // Without maybe edges the output tuple is an unexplained leaf: the
  // legacy application's internals are opaque.
  ASSERT_EQ(b->leaf_vids.size(), 1u);
  EXPECT_EQ(b->leaf_vids[0], output.Hash());
}

TEST_F(ProxyTest, MaybeEdgeOrderIndependent) {
  // Output observed before the input (interception order can vary): the
  // join must still find the pair.
  ASSERT_TRUE(proxy_->OnOutgoing({3, 100, {0, 5, 9}, false}).ok());
  ASSERT_TRUE(proxy_->OnIncoming({5, 100, {5, 9}, false}).ok());
  sim_.Run();
  Tuple output("outputRoute",
               {Value::Address(0), Value::Address(3), Value::Int(100),
                Value::List({Value::Address(0), Value::Address(5),
                             Value::Address(9)})});
  bool found_maybe = false;
  for (const Tuple& t :
       engine_->TableContents(provenance::kProvTable)) {
    if (runtime::ValueToVid(t.field(1)) == output.Hash() &&
        t.field(4).Truthy()) {
      found_maybe = true;
    }
  }
  EXPECT_TRUE(found_maybe);
}

}  // namespace
}  // namespace proxy
}  // namespace nettrails
