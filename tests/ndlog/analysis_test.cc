#include "src/ndlog/analysis.h"

#include <gtest/gtest.h>

#include "src/ndlog/parser.h"

namespace nettrails {
namespace ndlog {
namespace {

Result<AnalyzedProgram> ParseAndAnalyze(const std::string& src) {
  Result<Program> prog = Parse(src);
  if (!prog.ok()) return prog.status();
  return Analyze(std::move(prog).value());
}

AnalyzedProgram Must(const std::string& src) {
  Result<AnalyzedProgram> r = ParseAndAnalyze(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : AnalyzedProgram{};
}

TEST(AnalysisTest, CatalogFromDeclsAndUse) {
  AnalyzedProgram a = Must(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(path, infinity, infinity, keys(1,2)).
    r1 path(@X,Y) :- link(@X,Y,C).
  )");
  const TableInfo* link = a.FindTable("link");
  ASSERT_NE(link, nullptr);
  EXPECT_TRUE(link->materialized);
  EXPECT_EQ(link->arity, 3u);
  EXPECT_TRUE(link->is_base);
  const TableInfo* path = a.FindTable("path");
  ASSERT_NE(path, nullptr);
  EXPECT_FALSE(path->is_base);  // derived
  EXPECT_EQ(path->keys, (std::vector<int>{0, 1}));
}

TEST(AnalysisTest, EventPredicatesAreNotMaterialized) {
  AnalyzedProgram a = Must(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    r1 ping(@Y,X) :- ping(@X,Y), link(@X,Y,C).
  )");
  const TableInfo* ping = a.FindTable("ping");
  ASSERT_NE(ping, nullptr);
  EXPECT_FALSE(ping->materialized);
}

TEST(AnalysisTest, LocationNormalized) {
  AnalyzedProgram a = Must("r1 out(@X,Y) :- in(@X,Y).");
  EXPECT_TRUE(a.program.rules[0].head.args[0].is_location);
  EXPECT_TRUE(
      std::get<Atom>(a.program.rules[0].body[0]).args[0].is_location);
}

TEST(AnalysisTest, ImplicitFirstArgLocation) {
  // The paper's maybe rule omits '@'; the first argument is the location.
  AnalyzedProgram a = Must(R"(
    materialize(inputRoute, infinity, infinity, keys(1,2,3)).
    materialize(outputRoute, infinity, infinity, keys(1,2,3)).
    br1 outputRoute(AS,R2,Prefix,Route2) ?-
        inputRoute(AS,R1,Prefix,Route1),
        f_isExtend(Route2,Route1,AS) == 1.
  )");
  EXPECT_TRUE(a.program.rules[0].head.args[0].is_location);
}

TEST(AnalysisTest, ArityMismatchRejected) {
  Result<AnalyzedProgram> r = ParseAndAnalyze(
      "r1 out(@X) :- in(@X,Y).\n"
      "r2 out(@X,Y) :- in(@X,Y).");
  EXPECT_FALSE(r.ok());
}

TEST(AnalysisTest, UnboundHeadVariableRejected) {
  Result<AnalyzedProgram> r =
      ParseAndAnalyze("r1 out(@X,Z) :- in(@X,Y).");
  EXPECT_FALSE(r.ok());
}

TEST(AnalysisTest, UnboundSelectionVariableRejected) {
  Result<AnalyzedProgram> r =
      ParseAndAnalyze("r1 out(@X,Y) :- in(@X,Y), Z > 2.");
  EXPECT_FALSE(r.ok());
}

TEST(AnalysisTest, AssignmentUsesOnlyBoundVars) {
  EXPECT_FALSE(
      ParseAndAnalyze("r1 out(@X,V) :- in(@X), V := W + 1.").ok());
  EXPECT_TRUE(
      ParseAndAnalyze("r1 out(@X,V) :- in(@X,W), V := W + 1.").ok());
}

TEST(AnalysisTest, AssignmentOrderMatters) {
  // V used before assigned.
  EXPECT_FALSE(
      ParseAndAnalyze("r1 out(@X,V) :- in(@X), V > 1, V := 2.").ok());
}

TEST(AnalysisTest, DoubleAssignmentRejected) {
  EXPECT_FALSE(
      ParseAndAnalyze("r1 out(@X,V) :- in(@X), V := 1, V := 2.").ok());
}

TEST(AnalysisTest, MultipleAggregatesRejected) {
  EXPECT_FALSE(
      ParseAndAnalyze("r1 out(@X,a_min<Y>,a_max<Y>) :- in(@X,Y).").ok());
}

TEST(AnalysisTest, AggregateInBodyRejected) {
  EXPECT_FALSE(Parse("r1 out(@X,Y) :- in(@X,a_min<Y>).").ok());
}

TEST(AnalysisTest, AggregateHeadLocationMustMatchBody) {
  EXPECT_FALSE(ParseAndAnalyze(
                   "r1 out(@Y,a_min<C>) :- in(@X,Y,C).")
                   .ok());
  EXPECT_TRUE(ParseAndAnalyze(
                  "r1 out(@X,a_min<C>) :- in(@X,Y,C).")
                  .ok());
}

TEST(AnalysisTest, MaybeRuleHeadVarsPreBound) {
  // Route2 appears only in the head and the selection: legal for maybe
  // rules (the head tuple arrives externally), illegal for regular rules.
  const char* maybe_src = R"(
    materialize(o, infinity, infinity, keys(1,2)).
    materialize(i, infinity, infinity, keys(1,2)).
    m1 o(@X,R2) ?- i(@X,R1), f_isExtend(R2,R1,X) == 1.
  )";
  EXPECT_TRUE(ParseAndAnalyze(maybe_src).ok());
  const char* regular_src = R"(
    materialize(o, infinity, infinity, keys(1,2)).
    materialize(i, infinity, infinity, keys(1,2)).
    m1 o(@X,R2) :- i(@X,R1), f_isExtend(R2,R1,X) == 1.
  )";
  EXPECT_FALSE(ParseAndAnalyze(regular_src).ok());
}

TEST(AnalysisTest, MaybeRuleRequiresMaterializedTables) {
  EXPECT_FALSE(ParseAndAnalyze("m1 o(@X,R) ?- i(@X,R).").ok());
}

TEST(AnalysisTest, MaybeRuleMustBeLocal) {
  const char* src = R"(
    materialize(o, infinity, infinity, keys(1,2)).
    materialize(i, infinity, infinity, keys(1,2)).
    m1 o(@X,Y) ?- i(@Y,X).
  )";
  EXPECT_FALSE(ParseAndAnalyze(src).ok());
}

TEST(AnalysisTest, TwoEventsInBodyRejected) {
  const char* src = R"(
    r1 out(@X,Y,Z) :- ev1(@X,Y), ev2(@X,Z).
  )";
  EXPECT_FALSE(ParseAndAnalyze(src).ok());
}

TEST(AnalysisTest, AtOnNonFirstArgumentRejected) {
  EXPECT_FALSE(ParseAndAnalyze("r1 out(@X,Y) :- in(X,@Y).").ok());
}

TEST(AnalysisTest, KeyOutOfRangeRejected) {
  const char* src = R"(
    materialize(link, infinity, infinity, keys(1,5)).
    r1 out(@X,Y) :- link(@X,Y).
  )";
  EXPECT_FALSE(ParseAndAnalyze(src).ok());
}

TEST(AnalysisTest, DuplicateMaterializeRejected) {
  const char* src = R"(
    materialize(t, infinity, infinity, keys(1)).
    materialize(t, infinity, infinity, keys(1)).
  )";
  EXPECT_FALSE(ParseAndAnalyze(src).ok());
}

}  // namespace
}  // namespace ndlog
}  // namespace nettrails
