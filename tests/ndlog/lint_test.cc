// ndlint pass tests: one malformed fixture per diagnostic code (asserting
// code, severity, and span), clean-lint assertions over every shipped
// protocol program, suppression pragmas, and the Compile() integration
// (error findings become PlanErrors; warnings and notes do not).
#include "src/ndlog/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/ndlog/analysis.h"
#include "src/ndlog/parser.h"
#include "src/protocols/programs.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace ndlog {
namespace {

DiagnosticEngine Lint(const std::string& src, LintOptions options = {}) {
  Result<Program> prog = Parse(src);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  Result<AnalyzedProgram> analyzed = Analyze(std::move(prog).value());
  EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  std::vector<std::string> pragmas = ParseLintPragmas(src);
  options.allow.insert(options.allow.end(), pragmas.begin(), pragmas.end());
  return LintProgram(analyzed.value(), options);
}

/// First finding with `code`, or nullptr.
const Diagnostic* Find(const DiagnosticEngine& diags, const std::string& code) {
  for (const Diagnostic& d : diags.diagnostics()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

::testing::AssertionResult HasFinding(const DiagnosticEngine& diags,
                                      const std::string& code,
                                      Severity severity, int line) {
  const Diagnostic* d = Find(diags, code);
  if (d == nullptr) {
    return ::testing::AssertionFailure()
           << "no " << code << " finding; got:\n" << diags.RenderAll();
  }
  if (d->severity != severity) {
    return ::testing::AssertionFailure()
           << code << " severity " << SeverityName(d->severity) << ", want "
           << SeverityName(severity);
  }
  if (d->span.line != line) {
    return ::testing::AssertionFailure()
           << code << " at line " << d->span.line << ", want line " << line
           << " (" << d->Render() << ")";
  }
  if (d->span.column <= 0) {
    return ::testing::AssertionFailure() << code << " has no column";
  }
  return ::testing::AssertionSuccess();
}

size_t CountWarningsOrWorse(const DiagnosticEngine& diags) {
  return diags.CountAtLeast(Severity::kWarning);
}

// ---------------------------------------------------------------------------
// Stratification (ND1xx)

TEST(LintTest, ND101UnstratifiedCountCycle) {
  DiagnosticEngine diags = Lint(
      R"(materialize(cnt, infinity, infinity, keys(1)).
materialize(obs, infinity, infinity, keys(1,2)).
c1 cnt(@X,a_count<*>) :- obs(@X,Y).
c2 obs(@X,N) :- cnt(@X,N).
)");
  EXPECT_TRUE(HasFinding(diags, "ND101", Severity::kError, 3));
}

TEST(LintTest, ND101SumCycleAlsoFlagged) {
  DiagnosticEngine diags = Lint(
      R"(materialize(total, infinity, infinity, keys(1)).
materialize(obs, infinity, infinity, keys(1,2)).
s1 total(@X,a_sum<Y>) :- obs(@X,Y).
s2 obs(@X,N) :- total(@X,N).
)");
  EXPECT_TRUE(HasFinding(diags, "ND101", Severity::kError, 3));
}

TEST(LintTest, MinRecursionIsLegal) {
  // MINCOST's recursion through a_min is the paper's own program; it must
  // not be flagged.
  DiagnosticEngine diags = Lint(protocols::MincostProgram());
  EXPECT_EQ(Find(diags, "ND101"), nullptr) << diags.RenderAll();
}

TEST(LintTest, ND102MaybeRuleInCycle) {
  DiagnosticEngine diags = Lint(
      R"(materialize(a, infinity, infinity, keys(1,2)).
materialize(b, infinity, infinity, keys(1,2)).
m1 a(@X,Y) ?- b(@X,Y).
r1 b(@X,Y) :- a(@X,Y).
)");
  EXPECT_TRUE(HasFinding(diags, "ND102", Severity::kWarning, 3));
}

// ---------------------------------------------------------------------------
// Type inference (ND2xx)

TEST(LintTest, ND201ConflictingFieldTypes) {
  DiagnosticEngine diags = Lint(
      R"(materialize(t, infinity, infinity, keys(1,2)).
f1 t(@X,1) :- periodic(@X,E,1,1).
f2 t(@X,"s") :- periodic(@X,E,1,1).
)");
  // The conflict is reported at the later use (program order).
  EXPECT_TRUE(HasFinding(diags, "ND201", Severity::kError, 3));
}

TEST(LintTest, StringFieldFlowsAcrossRulesIntoArithmetic) {
  // The string type flows const -> field -> var across rules; the
  // arithmetic misuse is caught with no literal at the conflict site.
  DiagnosticEngine diags = Lint(
      R"(materialize(t, infinity, infinity, keys(1,2)).
materialize(u, infinity, infinity, keys(1,2)).
f1 t(@X,"s") :- periodic(@X,E,1,1).
f2 u(@X,S2) :- t(@X,S), S2 := S + 1.
)");
  ASSERT_NE(Find(diags, "ND203"), nullptr) << diags.RenderAll();
}

TEST(LintTest, ND202BuiltinArgumentMismatch) {
  DiagnosticEngine diags = Lint(
      R"(s1 out(@X,S) :- periodic(@X,E,1,1), S := f_size(7).
)");
  EXPECT_TRUE(HasFinding(diags, "ND202", Severity::kError, 1));
}

TEST(LintTest, ND203DisjointComparison) {
  DiagnosticEngine diags = Lint(
      R"(s1 out(@X) :- periodic(@X,E,1,1), A := f_list(X), A == 3.
)");
  EXPECT_TRUE(HasFinding(diags, "ND203", Severity::kWarning, 1));
}

TEST(LintTest, IntDoubleComparisonIsNotFlagged) {
  DiagnosticEngine diags = Lint(
      R"(s1 out(@X) :- periodic(@X,E,1,1), A := 1 + 2, A < 2.5.
)");
  EXPECT_EQ(Find(diags, "ND203"), nullptr) << diags.RenderAll();
}

// ---------------------------------------------------------------------------
// Link restriction (ND3xx)

TEST(LintTest, ND301ThreeLocations) {
  DiagnosticEngine diags = Lint(
      R"(materialize(a, infinity, infinity, keys(1,2)).
r1 out(@X) :- a(@X,Y), a(@Y,Z), a(@Z,W).
)");
  EXPECT_TRUE(HasFinding(diags, "ND301", Severity::kError, 2));
}

TEST(LintTest, ND302TwoLocationsNoConnector) {
  DiagnosticEngine diags = Lint(
      R"(materialize(a, infinity, infinity, keys(1,2)).
materialize(b, infinity, infinity, keys(1,2)).
r1 out(@X) :- a(@X,C), b(@Y,C).
)");
  EXPECT_TRUE(HasFinding(diags, "ND302", Severity::kError, 3));
}

TEST(LintTest, LinkShapedConnectorIsAccepted) {
  // The canonical path-vector sp2 shape: link(@X,Y,...) with the rest of
  // the body at Y.
  DiagnosticEngine diags = Lint(
      R"(materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).
r1 path(@X,Z,C) :- link(@X,Y,C1), path(@Y,Z,C2), C := C1 + C2.
)");
  EXPECT_EQ(Find(diags, "ND301"), nullptr) << diags.RenderAll();
  EXPECT_EQ(Find(diags, "ND302"), nullptr) << diags.RenderAll();
}

TEST(LintTest, ND303ShipToNonLinkNeighbor) {
  DiagnosticEngine diags = Lint(
      R"(materialize(a, infinity, infinity, keys(1,2)).
r1 out(@Y,X) :- a(@X,Y).
)");
  EXPECT_TRUE(HasFinding(diags, "ND303", Severity::kWarning, 2));
}

TEST(LintTest, ND303RespectsDeclaredLinkPredicates) {
  // Same rule, but `a` declared as a link predicate: shipping along its
  // second field is the legal one-hop pattern.
  LintOptions options;
  options.link_predicates.insert("a");
  DiagnosticEngine diags = Lint(
      R"(materialize(a, infinity, infinity, keys(1,2)).
r1 out(@Y,X) :- a(@X,Y).
)",
      options);
  EXPECT_EQ(Find(diags, "ND303"), nullptr) << diags.RenderAll();
}

// ---------------------------------------------------------------------------
// Dead code (ND4xx)

TEST(LintTest, ND401DeadEventRule) {
  DiagnosticEngine diags = Lint(
      R"(materialize(link, infinity, infinity, keys(1,2)).
r1 ev(@X,Y) :- link(@X,Y,C).
)");
  EXPECT_TRUE(HasFinding(diags, "ND401", Severity::kWarning, 2));
}

TEST(LintTest, ND402WriteOnlyVariable) {
  DiagnosticEngine diags = Lint(
      R"(materialize(link, infinity, infinity, keys(1,2)).
materialize(out, infinity, infinity, keys(1,2)).
r1 out(@X,Y) :- link(@X,Y,C), Z := C + 1.
)");
  EXPECT_TRUE(HasFinding(diags, "ND402", Severity::kWarning, 3));
}

TEST(LintTest, ND403SingletonVariable) {
  DiagnosticEngine diags = Lint(
      R"(materialize(link, infinity, infinity, keys(1,2)).
materialize(out, infinity, infinity, keys(1)).
r1 out(@X) :- link(@X,Y,C).
)");
  EXPECT_TRUE(HasFinding(diags, "ND403", Severity::kNote, 3));
}

TEST(LintTest, LocationVariablesAreNeverSingletons) {
  // X names the evaluation site; it must not be flagged even though it
  // appears nowhere else.
  DiagnosticEngine diags = Lint(
      R"(materialize(t, infinity, infinity, keys(1,2)).
materialize(out, infinity, infinity, keys(1,2)).
r1 out(@X,Y) :- t(@X,Y).
)");
  EXPECT_EQ(Find(diags, "ND403"), nullptr) << diags.RenderAll();
}

// ---------------------------------------------------------------------------
// Plan quality (ND5xx)

TEST(LintTest, ND501ScanFallbackJoin) {
  // On a `b` delta nothing in `a` is bound — not even the location — so
  // every delta scans the whole table.
  DiagnosticEngine diags = Lint(
      R"(materialize(a, infinity, infinity, keys(1,2)).
materialize(b, infinity, infinity, keys(1,2)).
r1 out(@X,Z) :- a(@X,Y), b(@1,Z), Y == Z.
)");
  EXPECT_TRUE(HasFinding(diags, "ND501", Severity::kWarning, 3));
}

TEST(LintTest, ND502BroadcastJoin) {
  DiagnosticEngine diags = Lint(
      R"(materialize(a, infinity, infinity, keys(1,2)).
materialize(b, infinity, infinity, keys(1,2)).
materialize(out, infinity, infinity, keys(1,2,3)).
r1 out(@X,Y,Z) :- a(@X,Y), b(@X,Z).
)");
  EXPECT_TRUE(HasFinding(diags, "ND502", Severity::kNote, 4));
}

TEST(LintTest, IndexedJoinIsClean) {
  DiagnosticEngine diags = Lint(
      R"(materialize(a, infinity, infinity, keys(1,2)).
materialize(b, infinity, infinity, keys(1,2)).
materialize(out, infinity, infinity, keys(1,2)).
r1 out(@X,Y) :- a(@X,Y), b(@X,Y).
)");
  EXPECT_EQ(Find(diags, "ND501"), nullptr) << diags.RenderAll();
  EXPECT_EQ(Find(diags, "ND502"), nullptr) << diags.RenderAll();
}

// ---------------------------------------------------------------------------
// Declaration hygiene (ND6xx)

TEST(LintTest, ND601UnreferencedTable) {
  DiagnosticEngine diags = Lint(
      R"(materialize(ghost, infinity, infinity, keys(1)).
materialize(link, infinity, infinity, keys(1,2)).
materialize(out, infinity, infinity, keys(1,2)).
r1 out(@X,Y) :- link(@X,Y,C).
)");
  EXPECT_TRUE(HasFinding(diags, "ND601", Severity::kWarning, 1));
}

TEST(LintTest, ND602SoftStateOnAggregateOutput) {
  DiagnosticEngine diags = Lint(
      R"(materialize(best, 30, infinity, keys(1)).
materialize(obs, infinity, infinity, keys(1,2)).
g1 best(@X,a_min<Y>) :- obs(@X,Y).
)");
  EXPECT_TRUE(HasFinding(diags, "ND602", Severity::kWarning, 1));
}

// ---------------------------------------------------------------------------
// Front-end codes and the registry

TEST(LintTest, FrontEndFailuresMapToND001AndND002) {
  // The ndlint CLI folds parse/analysis failures into ND001/ND002 so every
  // outcome renders uniformly; the codes must exist and be errors.
  const DiagnosticInfo* parse_info = FindDiagnostic("ND001");
  ASSERT_NE(parse_info, nullptr);
  EXPECT_EQ(parse_info->default_severity, Severity::kError);
  const DiagnosticInfo* sema_info = FindDiagnostic("ND002");
  ASSERT_NE(sema_info, nullptr);
  EXPECT_EQ(sema_info->default_severity, Severity::kError);
  EXPECT_FALSE(Parse("r1 out(@X :- link(@X,Y,C).").ok());
  Result<Program> dup = Parse(
      R"(materialize(t, infinity, infinity, keys(1)).
materialize(t, infinity, infinity, keys(1)).
)");
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(Analyze(std::move(dup).value()).ok());
}

TEST(LintTest, RegistryCoversAllEmittedCodes) {
  // At least 8 distinct codes across the five pass families, all
  // registered with summaries.
  EXPECT_GE(AllDiagnostics().size(), 8u);
  for (const char* code :
       {"ND101", "ND102", "ND201", "ND202", "ND203", "ND301", "ND302",
        "ND303", "ND401", "ND402", "ND403", "ND501", "ND502", "ND601",
        "ND602"}) {
    const DiagnosticInfo* info = FindDiagnostic(code);
    ASSERT_NE(info, nullptr) << code;
    EXPECT_NE(std::string(info->summary), "") << code;
  }
}

// ---------------------------------------------------------------------------
// Suppression pragmas

TEST(LintTest, PragmaParsing) {
  std::vector<std::string> allow =
      ParseLintPragmas("// ndlint: allow(ND303)\n// ndlint: allow(ND401, ND403)\n");
  EXPECT_EQ(allow, (std::vector<std::string>{"ND303", "ND401", "ND403"}));
}

TEST(LintTest, PragmaSuppressesFinding) {
  DiagnosticEngine diags = Lint(
      R"(// ndlint: allow(ND303)
materialize(a, infinity, infinity, keys(1,2)).
r1 out(@Y,X) :- a(@X,Y).
)");
  EXPECT_EQ(Find(diags, "ND303"), nullptr) << diags.RenderAll();
}

// ---------------------------------------------------------------------------
// Shipped programs lint clean (the CI gate's contract)

TEST(LintTest, ShippedProtocolProgramsLintClean) {
  for (const char* source :
       {protocols::MincostProgram(), protocols::PathVectorProgram(),
        protocols::DsrProgram(), protocols::LinkStateProgram(),
        protocols::BgpMaybeProgram()}) {
    DiagnosticEngine diags = Lint(source);
    EXPECT_EQ(CountWarningsOrWorse(diags), 0u) << diags.RenderAll();
  }
}

// ---------------------------------------------------------------------------
// Compile() integration

TEST(LintTest, CompileFailsOnLintError) {
  const char* bad =
      R"(materialize(t, infinity, infinity, keys(1,2)).
f1 t(@X,1) :- periodic(@X,E,1,1).
f2 t(@X,"s") :- periodic(@X,E,1,1).
)";
  Result<runtime::CompiledProgramPtr> r = runtime::Compile(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("lint failed"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("ND201"), std::string::npos)
      << r.status().message();

  // The same program compiles with lint off: the findings change nothing
  // about what is computed.
  runtime::CompileOptions no_lint;
  no_lint.lint = false;
  EXPECT_TRUE(runtime::Compile(bad, no_lint).ok());
}

TEST(LintTest, CompileIgnoresWarningsAndNotes) {
  // ND303 + ND401 + ND403 findings, but nothing error-severity: compiles.
  const char* warn_only =
      R"(materialize(link, infinity, infinity, keys(1,2)).
r1 ev(@X,Y) :- link(@X,Y,C).
)";
  Result<runtime::CompiledProgramPtr> r = runtime::Compile(warn_only);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(LintTest, CompileHonorsSuppressionPragma) {
  // ND101 is an error, but an in-source pragma waives it for the file.
  const char* suppressed =
      R"(// ndlint: allow(ND101)
materialize(cnt, infinity, infinity, keys(1)).
materialize(obs, infinity, infinity, keys(1,2)).
c1 cnt(@X,a_count<*>) :- obs(@X,Y).
c2 obs(@X,N) :- cnt(@X,N).
)";
  EXPECT_TRUE(runtime::Compile(suppressed).ok());
}

// ---------------------------------------------------------------------------
// Span-threaded PlanError messages (front-end regression tests)

TEST(LintTest, AnalysisErrorsCarrySpans) {
  Result<Program> prog = Parse(
      R"(materialize(link, infinity, infinity, keys(1,2)).
r1 out(@X,Q) :- link(@X,Y,C).
)");
  ASSERT_TRUE(prog.ok());
  Result<AnalyzedProgram> r = Analyze(std::move(prog).value());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("unbound variable Q"),
            std::string::npos)
      << r.status().message();
}

TEST(LintTest, UnknownBuiltinErrorCarriesSpan) {
  Result<runtime::CompiledProgramPtr> r = runtime::Compile(
      R"(materialize(link, infinity, infinity, keys(1,2)).
materialize(out, infinity, infinity, keys(1,2)).
r1 out(@X,Y2) :- link(@X,Y,C), Y2 := f_nope(Y).
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown builtin function f_nope"),
            std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().message();
}

TEST(LintTest, ArityErrorCarriesSpan) {
  Result<runtime::CompiledProgramPtr> r = runtime::Compile(
      R"(materialize(link, infinity, infinity, keys(1,2)).
materialize(out, infinity, infinity, keys(1,2)).
r1 out(@X,P2) :- link(@X,Y,C), P := f_list(Y), P2 := f_append(P).
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("f_append expects"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().message();
}

// ---------------------------------------------------------------------------
// Rendering and ordering

TEST(LintTest, FindingsAreSortedBySourcePosition) {
  DiagnosticEngine diags = Lint(
      R"(materialize(link, infinity, infinity, keys(1,2)).
r1 ev(@X,Y) :- link(@X,Y,C), Z := C + 1.
r2 ev2(@X,Y) :- link(@X,Y,C).
)");
  const std::vector<Diagnostic>& all = diags.diagnostics();
  ASSERT_GE(all.size(), 2u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const Diagnostic& a, const Diagnostic& b) {
                               return a.span.line < b.span.line;
                             }))
      << diags.RenderAll();
}

TEST(LintTest, MachineRenderingIsTabSeparated) {
  Diagnostic d;
  d.code = "ND501";
  d.severity = Severity::kWarning;
  d.span = Span{3, 7};
  d.rule = "r1";
  d.message = "msg";
  EXPECT_EQ(d.RenderMachine("f.ndlog"),
            "f.ndlog\t3\t7\twarning\tND501\tr1\tmsg");
  EXPECT_EQ(d.Render("f.ndlog"), "f.ndlog:3:7: warning: rule r1: msg [ND501]");
}

}  // namespace
}  // namespace ndlog
}  // namespace nettrails
