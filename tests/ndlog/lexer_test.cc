#include "src/ndlog/lexer.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace ndlog {
namespace {

std::vector<TokenKind> Kinds(const std::string& src) {
  Result<std::vector<Token>> toks = Tokenize(src);
  EXPECT_TRUE(toks.ok()) << toks.status().ToString();
  std::vector<TokenKind> out;
  if (toks.ok()) {
    for (const Token& t : *toks) out.push_back(t.kind);
  }
  return out;
}

TEST(LexerTest, IdentifiersAndVariables) {
  auto toks = *Tokenize("link Path f_member X");
  ASSERT_EQ(toks.size(), 5u);  // + EOF
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "link");
  EXPECT_EQ(toks[1].kind, TokenKind::kVariable);
  EXPECT_EQ(toks[2].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[3].kind, TokenKind::kVariable);
  EXPECT_EQ(toks[4].kind, TokenKind::kEof);
}

TEST(LexerTest, Numbers) {
  auto toks = *Tokenize("42 3.5 1e3");
  EXPECT_EQ(toks[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokenKind::kDoubleLit);
  EXPECT_DOUBLE_EQ(toks[1].double_value, 3.5);
  EXPECT_EQ(toks[2].kind, TokenKind::kDoubleLit);
  EXPECT_DOUBLE_EQ(toks[2].double_value, 1000);
}

TEST(LexerTest, Strings) {
  auto toks = *Tokenize("\"hello\\\"world\\n\"");
  ASSERT_EQ(toks[0].kind, TokenKind::kStringLit);
  EXPECT_EQ(toks[0].text, "hello\"world\n");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  EXPECT_EQ(Kinds(":- ?- := == != <= >= && || < > ! @ ( ) [ ] , . + - * / %"),
            (std::vector<TokenKind>{
                TokenKind::kDerives, TokenKind::kMaybeDerives,
                TokenKind::kAssign, TokenKind::kEq, TokenKind::kNe,
                TokenKind::kLe, TokenKind::kGe, TokenKind::kAndAnd,
                TokenKind::kOrOr, TokenKind::kLAngle, TokenKind::kRAngle,
                TokenKind::kBang, TokenKind::kAt, TokenKind::kLParen,
                TokenKind::kRParen, TokenKind::kLBracket,
                TokenKind::kRBracket, TokenKind::kComma, TokenKind::kPeriod,
                TokenKind::kPlus, TokenKind::kMinus, TokenKind::kStar,
                TokenKind::kSlash, TokenKind::kPercent, TokenKind::kEof}));
}

TEST(LexerTest, Comments) {
  auto toks = *Tokenize("a // line comment\n b /* block\ncomment */ c");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto toks = *Tokenize("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("/* unterminated").ok());
  EXPECT_FALSE(Tokenize("a = b").ok());   // single '='
  EXPECT_FALSE(Tokenize("a & b").ok());   // single '&'
  EXPECT_FALSE(Tokenize("a : b").ok());   // lone ':'
  EXPECT_FALSE(Tokenize("$").ok());
}

TEST(LexerTest, MaybeRuleSymbol) {
  auto toks = *Tokenize("h(X) ?- b(X).");
  bool found = false;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kMaybeDerives) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ndlog
}  // namespace nettrails
