#include "src/ndlog/localize.h"

#include <gtest/gtest.h>

#include "src/ndlog/parser.h"

namespace nettrails {
namespace ndlog {
namespace {

Result<Program> ParseAnalyzeLocalize(const std::string& src) {
  Result<Program> prog = Parse(src);
  if (!prog.ok()) return prog.status();
  Result<AnalyzedProgram> analyzed = Analyze(std::move(prog).value());
  if (!analyzed.ok()) return analyzed.status();
  return Localize(*analyzed);
}

// All body atoms of every rule share one location variable.
void ExpectLocalized(const Program& prog) {
  for (const Rule& rule : prog.rules) {
    std::set<std::string> locs;
    for (const Atom* atom : rule.BodyAtoms()) {
      if (atom->args[0].expr->is_var()) {
        locs.insert(atom->args[0].expr->var_name());
      }
    }
    EXPECT_LE(locs.size(), 1u) << rule.ToString();
  }
}

TEST(LocalizeTest, LocalRulesPassThrough) {
  Result<Program> out = ParseAnalyzeLocalize(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(path, infinity, infinity, keys(1,2)).
    r1 path(@X,Y) :- link(@X,Y,C).
  )");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->rules.size(), 1u);
}

TEST(LocalizeTest, CanonicalPathVectorRule) {
  Result<Program> out = ParseAnalyzeLocalize(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(path, infinity, infinity, keys(1,2,3,4)).
    sp1 path(@X,Y,C,P) :- link(@X,Y,C), P := f_list(X,Y).
    sp2 path(@X,Z,C,P) :- link(@X,Y,C1), path(@Y,Z,C2,P2),
                          C := C1 + C2, P := f_prepend(X,P2).
  )");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ExpectLocalized(*out);

  // The reversed-link table and its deriving rule were generated.
  bool found_reversal_rule = false;
  for (const Rule& r : out->rules) {
    if (r.head.predicate == "link_d") {
      found_reversal_rule = true;
      ASSERT_EQ(r.BodyAtoms().size(), 1u);
      EXPECT_EQ(r.BodyAtoms()[0]->predicate, "link");
    }
  }
  EXPECT_TRUE(found_reversal_rule);
  const MaterializeDecl* decl = out->FindMaterialization("link_d");
  ASSERT_NE(decl, nullptr);
  // Keys (1,2) swap to (2,1) -> stored 0-based {1,0} in some order.
  std::vector<int> keys = decl->keys;
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<int>{0, 1}));

  // sp2 now uses link_d at @Y.
  for (const Rule& r : out->rules) {
    if (r.name == "sp2") {
      ASSERT_EQ(r.BodyAtoms().size(), 2u);
      EXPECT_EQ(r.BodyAtoms()[0]->predicate, "link_d");
      EXPECT_EQ(r.BodyAtoms()[0]->args[0].expr->var_name(), "Y");
    }
  }
}

TEST(LocalizeTest, ReversalGeneratedOncePerPredicate) {
  Result<Program> out = ParseAnalyzeLocalize(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(a, infinity, infinity, keys(1,2)).
    materialize(b, infinity, infinity, keys(1,2)).
    r1 a(@X,Z) :- link(@X,Y,C), a(@Y,Z).
    r2 b(@X,Z) :- link(@X,Y,C), b(@Y,Z).
  )");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  int reversal_rules = 0;
  for (const Rule& r : out->rules) {
    if (r.head.predicate == "link_d") ++reversal_rules;
  }
  EXPECT_EQ(reversal_rules, 1);
}

TEST(LocalizeTest, RuleAtLinkSourceAlreadyLocal) {
  // All body atoms at X; the head ships to Y. No rewrite needed.
  Result<Program> out = ParseAnalyzeLocalize(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(reach, infinity, infinity, keys(1,2)).
    r1 reach(@Y,X) :- link(@X,Y,C), reach(@X,X2).
  )");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->rules.size(), 1u);
  ExpectLocalized(*out);
}

TEST(LocalizeTest, ThreeLocationsRejected) {
  Result<Program> out = ParseAnalyzeLocalize(R"(
    materialize(a, infinity, infinity, keys(1)).
    materialize(b, infinity, infinity, keys(1)).
    materialize(c, infinity, infinity, keys(1)).
    materialize(o, infinity, infinity, keys(1)).
    r1 o(@X) :- a(@X), b(@Y), c(@Z).
  )");
  EXPECT_FALSE(out.ok());
}

TEST(LocalizeTest, TwoLocationsWithoutLinkAtomRejected) {
  Result<Program> out = ParseAnalyzeLocalize(R"(
    materialize(a, infinity, infinity, keys(1,2)).
    materialize(b, infinity, infinity, keys(1,2)).
    materialize(o, infinity, infinity, keys(1,2)).
    r1 o(@X,W) :- a(@X,V), b(@Y,W).
  )");
  EXPECT_FALSE(out.ok());
}

TEST(LocalizeTest, LocalizedProgramReanalyzes) {
  Result<Program> out = ParseAnalyzeLocalize(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(path, infinity, infinity, keys(1,2,3,4)).
    sp2 path(@X,Z,C,P) :- link(@X,Y,C1), path(@Y,Z,C2,P2),
                          C := C1 + C2, P := f_prepend(X,P2).
  )");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  Result<AnalyzedProgram> again = Analyze(std::move(out).value());
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

}  // namespace
}  // namespace ndlog
}  // namespace nettrails
