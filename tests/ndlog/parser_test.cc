#include "src/ndlog/parser.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace ndlog {
namespace {

Program MustParse(const std::string& src) {
  Result<Program> prog = Parse(src);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  return prog.ok() ? std::move(prog).value() : Program{};
}

TEST(ParserTest, Materialize) {
  Program p = MustParse("materialize(link, infinity, infinity, keys(1,2)).");
  ASSERT_EQ(p.materializations.size(), 1u);
  const MaterializeDecl& m = p.materializations[0];
  EXPECT_EQ(m.table, "link");
  EXPECT_EQ(m.lifetime_secs, -1);
  EXPECT_EQ(m.max_size, -1);
  EXPECT_EQ(m.keys, (std::vector<int>{0, 1}));  // stored 0-based
}

TEST(ParserTest, MaterializeFiniteLifetime) {
  Program p = MustParse("materialize(cache, 30, 1000, keys(1)).");
  EXPECT_EQ(p.materializations[0].lifetime_secs, 30);
  EXPECT_EQ(p.materializations[0].max_size, 1000);
}

TEST(ParserTest, MaterializeEmptyKeys) {
  Program p = MustParse("materialize(t, infinity, infinity, keys()).");
  EXPECT_TRUE(p.materializations[0].keys.empty());
}

TEST(ParserTest, SimpleRule) {
  Program p = MustParse("r1 path(@X,Y,C) :- link(@X,Y,C).");
  ASSERT_EQ(p.rules.size(), 1u);
  const Rule& r = p.rules[0];
  EXPECT_EQ(r.name, "r1");
  EXPECT_FALSE(r.is_maybe);
  EXPECT_EQ(r.head.predicate, "path");
  ASSERT_EQ(r.head.args.size(), 3u);
  EXPECT_TRUE(r.head.args[0].is_location);
  ASSERT_EQ(r.body.size(), 1u);
  const Atom& b = std::get<Atom>(r.body[0]);
  EXPECT_EQ(b.predicate, "link");
}

TEST(ParserTest, RuleWithAssignAndSelect) {
  Program p = MustParse(
      "r2 path(@X,Z,C,P) :- link(@X,Y,C1), path(@Y,Z,C2,P2), "
      "f_member(P2,X) == 0, C := C1 + C2, P := f_prepend(X,P2).");
  const Rule& r = p.rules[0];
  ASSERT_EQ(r.body.size(), 5u);
  EXPECT_TRUE(std::holds_alternative<Atom>(r.body[0]));
  EXPECT_TRUE(std::holds_alternative<Atom>(r.body[1]));
  EXPECT_TRUE(std::holds_alternative<Select>(r.body[2]));
  EXPECT_TRUE(std::holds_alternative<Assign>(r.body[3]));
  const Assign& a = std::get<Assign>(r.body[3]);
  EXPECT_EQ(a.var, "C");
}

TEST(ParserTest, AggregateHead) {
  Program p = MustParse("r3 mincost(@X,Z,a_min<C>) :- cost(@X,Z,C).");
  const Rule& r = p.rules[0];
  ASSERT_EQ(r.head.args.size(), 3u);
  ASSERT_TRUE(r.head.args[2].agg.has_value());
  EXPECT_EQ(*r.head.args[2].agg, AggFn::kMin);
  EXPECT_EQ(r.head.args[2].expr->var_name(), "C");
  EXPECT_TRUE(r.head.HasAggregate());
}

TEST(ParserTest, CountStarAggregate) {
  Program p = MustParse("r4 total(@X,a_count<*>) :- path(@X,Z,C).");
  ASSERT_TRUE(p.rules[0].head.args[1].agg.has_value());
  EXPECT_EQ(*p.rules[0].head.args[1].agg, AggFn::kCount);
  EXPECT_EQ(p.rules[0].head.args[1].expr, nullptr);
}

TEST(ParserTest, MaybeRuleFromPaper) {
  // The paper's br1 rule (with the location marker made explicit).
  Program p = MustParse(
      "br1 outputRoute(@AS,R2,Prefix,Route2) ?- "
      "inputRoute(@AS,R1,Prefix,Route1), "
      "f_isExtend(Route2,Route1,AS) == 1.");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_TRUE(p.rules[0].is_maybe);
}

TEST(ParserTest, ExpressionPrecedence) {
  Program p = MustParse("r5 out(@X,V) :- in(@X,A,B), V := A + B * 2 - 1.");
  const Assign& a = std::get<Assign>(p.rules[0].body[1]);
  // (A + (B*2)) - 1
  EXPECT_EQ(a.expr->ToString(), "((A + (B * 2)) - 1)");
}

TEST(ParserTest, BooleanExpressionPrecedence) {
  Program p = MustParse("r6 out(@X) :- in(@X,A,B), A < 3 && B == 2 || A > 9.");
  const Select& s = std::get<Select>(p.rules[0].body[1]);
  EXPECT_EQ(s.expr->ToString(), "(((A < 3) && (B == 2)) || (A > 9))");
}

TEST(ParserTest, ListLiteralsAndAddressLiterals) {
  Program p = MustParse("r7 out(@X,P) :- in(@X), P := [1, @2, \"s\"].");
  const Assign& a = std::get<Assign>(p.rules[0].body[1]);
  EXPECT_EQ(a.expr->ToString(), "[1, @2, \"s\"]");
}

TEST(ParserTest, ConstantLocationInAtom) {
  Program p = MustParse("r8 out(@1,Y) :- in(@1,Y).");
  EXPECT_TRUE(p.rules[0].head.args[0].expr->is_const());
  EXPECT_TRUE(p.rules[0].head.args[0].expr->const_value().is_address());
}

TEST(ParserTest, MultipleStatements) {
  Program p = MustParse(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(path, infinity, infinity, keys(1,2)).
    r1 path(@X,Y) :- link(@X,Y,C).
    r2 path(@X,Z) :- link(@X,Y,C), path(@Y,Z).
  )");
  EXPECT_EQ(p.materializations.size(), 2u);
  EXPECT_EQ(p.rules.size(), 2u);
}

TEST(ParserTest, ProgramToStringReparses) {
  Program p = MustParse(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    r1 path(@X,Y,C,P) :- link(@X,Y,C), P := f_list(X,Y).
    r3 best(@X,Z,a_min<C>) :- path(@X,Z,C,P).
  )");
  Program p2 = MustParse(p.ToString());
  EXPECT_EQ(p.ToString(), p2.ToString());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("r1 path(@X) :- link(@X)").ok());    // missing period
  EXPECT_FALSE(Parse("r1 path() :- link(@X).").ok());     // empty args
  EXPECT_FALSE(Parse("path(@X) :- link(@X).").ok());      // missing rule name
  EXPECT_FALSE(Parse("r1 path(@X) : link(@X).").ok());    // bad separator
  EXPECT_FALSE(Parse("materialize(x, infinity).").ok());  // malformed decl
  EXPECT_FALSE(Parse("materialize(x, infinity, infinity, keys(0)).").ok());
  EXPECT_FALSE(Parse("r1 h(@X, a_min<3>) :- b(@X).").ok());  // agg of const
  EXPECT_FALSE(Parse("r1 h(@X) :- unknownident.").ok());
}

}  // namespace
}  // namespace ndlog
}  // namespace nettrails
