// Deterministic fault injection: decision purity, bit-identical fault
// schedules across thread counts, per-flow FIFO preservation, exact
// always/never fault semantics, the fault window, and node crash / pause /
// restart link bookkeeping.
#include "src/net/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/simulator.h"

namespace nettrails {
namespace net {
namespace {

Message Ping(Simulator* sim, NodeId src, NodeId dst, int64_t tag = 1,
             const std::string& channel = "tuple") {
  Message m;
  m.src = src;
  m.dst = dst;
  m.channel = sim->InternChannel(channel);
  m.payload = Tuple("ping", {Value::Address(dst), Value::Int(tag)});
  return m;
}

TEST(FaultDecisionTest, PureAndSaltSeparated) {
  const uint64_t d = FaultDecision(7, 100, 3, FaultSalt::kDrop);
  EXPECT_EQ(d, FaultDecision(7, 100, 3, FaultSalt::kDrop));  // pure
  EXPECT_NE(d, FaultDecision(7, 100, 3, FaultSalt::kDup));   // salt matters
  EXPECT_NE(d, FaultDecision(7, 101, 3, FaultSalt::kDrop));  // seq matters
  EXPECT_NE(d, FaultDecision(8, 100, 3, FaultSalt::kDrop));  // seed matters
  EXPECT_NE(d, FaultDecision(7, 100, 4, FaultSalt::kDrop));  // channel matters
  // Rate edge cases are exact, not probabilistic.
  EXPECT_FALSE(FaultHit(7, 100, 3, FaultSalt::kDrop, 0));
  EXPECT_TRUE(FaultHit(7, 100, 3, FaultSalt::kDrop, 10000));
  EXPECT_EQ(FaultDraw(7, 100, 3, FaultSalt::kDelayJitter, 0), 0u);
  const FaultTime j = FaultDraw(7, 100, 3, FaultSalt::kDelayJitter, 50);
  EXPECT_GE(j, 1u);
  EXPECT_LE(j, 50u);
}

/// Runs a cascading-forward scenario under a fault plan and returns the
/// per-node delivery trace plus the simulator's deterministic counters.
/// Handlers forward with a decremented TTL around a 4-node ring, so fault
/// decisions feed back into the traffic they are drawn for — any divergence
/// in decision order compounds and becomes visible.
struct CascadeResult {
  std::vector<std::vector<std::string>> per_node_log;
  ChannelFaultStats total;
  TrafficStats traffic;
  uint64_t events = 0;
};

CascadeResult RunCascade(unsigned threads, uint64_t seed) {
  SimulatorOptions opts;
  opts.num_threads = threads;
  opts.faults.seed = seed;
  opts.faults.spec.drop_per_10k = 1200;
  opts.faults.spec.dup_per_10k = 900;
  opts.faults.spec.delay_per_10k = 2000;
  opts.faults.spec.delay_jitter_max = 700;
  opts.faults.spec.reorder_per_10k = 800;
  opts.faults.spec.reorder_hold = 3 * kMillisecond;
  Simulator sim(opts);
  const unsigned kNodes = 4;
  for (unsigned i = 0; i < kNodes; ++i) sim.AddNode();
  for (unsigned i = 0; i < kNodes; ++i) sim.AddLink(i, (i + 1) % kNodes);
  sim.AddLink(0, 2);

  CascadeResult out;
  out.per_node_log.resize(kNodes);
  for (unsigned n = 0; n < kNodes; ++n) {
    // Each handler appends only to its own node's log: in threaded mode a
    // node is owned by exactly one worker per wave, so this is race-free.
    sim.RegisterHandler(n, "tuple", [&sim, &out, n](Message& m) {
      const int64_t ttl = m.payload.field(1).as_int();
      out.per_node_log[n].push_back(std::to_string(sim.now()) + ":" +
                                    std::to_string(ttl));
      if (ttl > 0) {
        sim.Send(Ping(&sim, n, (n + 1) % 4, ttl - 1));
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    sim.Send(Ping(&sim, i % kNodes, (i + 1) % kNodes, /*tag=*/6));
  }
  sim.Run();
  out.total = sim.total_fault_stats();
  out.traffic = sim.total_traffic();
  out.events = sim.events_executed();
  return out;
}

TEST(FaultInjectionTest, ScheduleBitIdenticalAcrossThreadCounts) {
  const CascadeResult serial = RunCascade(1, 4242);
  // The plan actually fired faults — otherwise this test proves nothing.
  EXPECT_GT(serial.total.dropped_fault, 0u);
  EXPECT_GT(serial.total.duplicated, 0u);
  EXPECT_GT(serial.total.delayed, 0u);
  EXPECT_GT(serial.total.reordered, 0u);
  EXPECT_EQ(serial.total.sent, serial.total.delivered +
                                   serial.total.dropped_link +
                                   serial.total.dropped_fault);
  for (unsigned threads : {2u, 4u}) {
    const CascadeResult t = RunCascade(threads, 4242);
    EXPECT_EQ(serial.per_node_log, t.per_node_log) << threads << " threads";
    EXPECT_EQ(serial.total.sent, t.total.sent);
    EXPECT_EQ(serial.total.delivered, t.total.delivered);
    EXPECT_EQ(serial.total.dropped_fault, t.total.dropped_fault);
    EXPECT_EQ(serial.total.duplicated, t.total.duplicated);
    EXPECT_EQ(serial.total.delayed, t.total.delayed);
    EXPECT_EQ(serial.total.reordered, t.total.reordered);
    EXPECT_EQ(serial.traffic.messages, t.traffic.messages);
    EXPECT_EQ(serial.traffic.bytes, t.traffic.bytes);
    EXPECT_EQ(serial.events, t.events);
  }
  // A different seed draws a different schedule.
  const CascadeResult other = RunCascade(1, 4243);
  EXPECT_NE(serial.per_node_log, other.per_node_log);
}

TEST(FaultInjectionTest, PerFlowFifoPreservedUnderJitterAndReorder) {
  SimulatorOptions opts;
  opts.faults.seed = 99;
  opts.faults.spec.delay_per_10k = 6000;
  opts.faults.spec.delay_jitter_max = 5 * kMillisecond;
  opts.faults.spec.reorder_per_10k = 4000;
  opts.faults.spec.reorder_hold = 8 * kMillisecond;
  Simulator sim(opts);
  NodeId a = sim.AddNode(), b = sim.AddNode(), c = sim.AddNode();
  sim.AddLink(a, b);
  sim.AddLink(c, b);
  std::vector<int64_t> from_a, from_c;
  sim.RegisterHandler(b, "tuple", [&](Message& m) {
    (m.src == a ? from_a : from_c).push_back(m.payload.field(1).as_int());
  });
  for (int i = 0; i < 64; ++i) {
    sim.Send(Ping(&sim, a, b, i));
    sim.Send(Ping(&sim, c, b, i));
  }
  sim.Run();
  ASSERT_EQ(from_a.size(), 64u);
  ASSERT_EQ(from_c.size(), 64u);
  // Jitter and hold-back may shuffle the interleaving of the two flows but
  // never the order within one flow (the delta-shipping contract).
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(from_a[i], i);
    EXPECT_EQ(from_c[i], i);
  }
  EXPECT_GT(sim.total_fault_stats().delayed + sim.total_fault_stats().reordered,
            0u);
}

TEST(FaultInjectionTest, AlwaysDropAndAlwaysDuplicateAreExact) {
  {
    SimulatorOptions opts;
    opts.faults.spec.drop_per_10k = 10000;
    Simulator sim(opts);
    NodeId a = sim.AddNode(), b = sim.AddNode();
    sim.AddLink(a, b);
    int got = 0;
    sim.RegisterHandler(b, "tuple", [&](const Message&) { ++got; });
    for (int i = 0; i < 10; ++i) {
      // Injected drops are sender-transparent: the frame left the NIC.
      EXPECT_TRUE(sim.Send(Ping(&sim, a, b, i)));
    }
    sim.Run();
    EXPECT_EQ(got, 0);
    const ChannelFaultStats t = sim.total_fault_stats();
    EXPECT_EQ(t.sent, 10u);
    EXPECT_EQ(t.dropped_fault, 10u);
    EXPECT_EQ(t.delivered, 0u);
    EXPECT_EQ(sim.dropped_messages(), 0u);  // legacy counter: link drops only
  }
  {
    SimulatorOptions opts;
    opts.faults.spec.dup_per_10k = 10000;
    Simulator sim(opts);
    NodeId a = sim.AddNode(), b = sim.AddNode();
    sim.AddLink(a, b);
    int got = 0;
    sim.RegisterHandler(b, "tuple", [&](const Message&) { ++got; });
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(sim.Send(Ping(&sim, a, b, i)));
    }
    sim.Run();
    // Duplicates do not re-roll: exactly one extra copy per frame.
    EXPECT_EQ(got, 20);
    const ChannelFaultStats t = sim.total_fault_stats();
    EXPECT_EQ(t.sent, 20u);
    EXPECT_EQ(t.delivered, 20u);
    EXPECT_EQ(t.duplicated, 10u);
  }
}

TEST(FaultInjectionTest, FaultWindowBoundsInjection) {
  SimulatorOptions opts;
  opts.faults.spec.drop_per_10k = 10000;
  opts.faults.start = 5 * kMillisecond;
  opts.faults.heal_time = 10 * kMillisecond;
  Simulator sim(opts);
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b);
  std::vector<Time> got;
  sim.RegisterHandler(b, "tuple", [&](const Message&) {
    got.push_back(sim.now());
  });
  for (Time t : {2u, 7u, 12u}) {
    sim.ScheduleAt(t * kMillisecond, [&sim, a, b] {
      sim.Send(Ping(&sim, a, b));
    });
  }
  sim.Run();
  // Only the send inside [start, heal) is dropped.
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 3 * kMillisecond);
  EXPECT_EQ(got[1], 13 * kMillisecond);
  EXPECT_EQ(sim.total_fault_stats().dropped_fault, 1u);
}

TEST(FaultInjectionTest, ChannelOverrideTakesPrecedence) {
  SimulatorOptions opts;
  opts.faults.spec.drop_per_10k = 0;
  opts.faults.channel_overrides["lossy"].drop_per_10k = 10000;
  Simulator sim(opts);
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b);
  int tuple_got = 0, lossy_got = 0;
  sim.RegisterHandler(b, "tuple", [&](const Message&) { ++tuple_got; });
  sim.RegisterHandler(b, "lossy", [&](const Message&) { ++lossy_got; });
  sim.Send(Ping(&sim, a, b, 1, "tuple"));
  sim.Send(Ping(&sim, a, b, 1, "lossy"));
  sim.Run();
  EXPECT_EQ(tuple_got, 1);
  EXPECT_EQ(lossy_got, 0);
  auto by_name = sim.ChannelFaultStatsByName();
  EXPECT_EQ(by_name["lossy"].dropped_fault, 1u);
  EXPECT_EQ(by_name["tuple"].dropped_fault, 0u);
}

TEST(FaultInjectionTest, LinkOverrideTakesPrecedenceOverChannel) {
  SimulatorOptions opts;
  opts.faults.channel_overrides["tuple"].drop_per_10k = 0;
  opts.faults.link_overrides[{0, 1}].drop_per_10k = 10000;
  Simulator sim(opts);
  NodeId a = sim.AddNode(), b = sim.AddNode(), c = sim.AddNode();
  sim.AddLink(a, b);
  sim.AddLink(a, c);
  int b_got = 0, c_got = 0;
  sim.RegisterHandler(b, "tuple", [&](const Message&) { ++b_got; });
  sim.RegisterHandler(c, "tuple", [&](const Message&) { ++c_got; });
  sim.Send(Ping(&sim, a, b));  // on the lossy link
  sim.Send(Ping(&sim, a, c));  // unaffected link
  sim.Run();
  EXPECT_EQ(b_got, 0);
  EXPECT_EQ(c_got, 1);
}

TEST(NodeLifecycleTest, CrashRestoresExactlyTheRecordedLinks) {
  Simulator sim;
  NodeId v = sim.AddNode();
  NodeId n1 = sim.AddNode(), n2 = sim.AddNode(), n3 = sim.AddNode();
  sim.AddLink(v, n1);
  sim.AddLink(v, n2);
  sim.AddLink(v, n3);
  // One incident link is already down before the crash.
  ASSERT_TRUE(sim.SetLinkUp(v, n2, false).ok());

  std::vector<std::string> events;
  sim.AddLinkObserver([&](NodeId a, NodeId b, bool up) {
    events.push_back("link:" + std::to_string(a) + "-" + std::to_string(b) +
                     (up ? ":up" : ":down"));
  });
  sim.AddNodeObserver([&](NodeId n, bool up) {
    events.push_back("node:" + std::to_string(n) + (up ? ":up" : ":down"));
  });

  ASSERT_TRUE(sim.SetNodeUp(v, false).ok());
  EXPECT_FALSE(sim.NodeUp(v));
  EXPECT_FALSE(sim.LinkUp(v, n1));
  EXPECT_FALSE(sim.LinkUp(v, n3));
  // Links drop in sorted order, then the node observer fires.
  EXPECT_EQ(events, (std::vector<std::string>{"link:0-1:down", "link:0-3:down",
                                              "node:0:down"}));
  events.clear();

  ASSERT_TRUE(sim.SetNodeUp(v, true).ok());
  EXPECT_TRUE(sim.NodeUp(v));
  EXPECT_TRUE(sim.LinkUp(v, n1));
  EXPECT_TRUE(sim.LinkUp(v, n3));
  // The link that was down before the crash is NOT resurrected.
  EXPECT_FALSE(sim.LinkUp(v, n2));
  EXPECT_EQ(events, (std::vector<std::string>{"link:0-1:up", "link:0-3:up",
                                              "node:0:up"}));
  // Redundant transitions are no-ops.
  ASSERT_TRUE(sim.SetNodeUp(v, true).ok());
  EXPECT_EQ(events.size(), 3u);
}

TEST(NodeLifecycleTest, DownNodeSwallowsBothDirections) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b);
  int got = 0;
  sim.RegisterHandler(b, "tuple", [&](const Message&) { ++got; });
  sim.RegisterHandler(a, "tuple", [&](const Message&) { ++got; });

  // Pause (links stay up): sends toward the node succeed but are consumed.
  ASSERT_TRUE(sim.SetNodeUp(b, false, /*with_links=*/false).ok());
  EXPECT_TRUE(sim.LinkUp(a, b));
  EXPECT_TRUE(sim.Send(Ping(&sim, a, b)));
  // Sends *from* the down node are swallowed at the NIC.
  EXPECT_TRUE(sim.Send(Ping(&sim, b, a)));
  sim.Run();
  EXPECT_EQ(got, 0);
  const ChannelFaultStats t = sim.total_fault_stats();
  EXPECT_EQ(t.sent, 2u);
  EXPECT_EQ(t.dropped_fault, 2u);
  EXPECT_EQ(t.sent, t.delivered + t.dropped_link + t.dropped_fault);

  ASSERT_TRUE(sim.SetNodeUp(b, true).ok());
  EXPECT_TRUE(sim.Send(Ping(&sim, a, b)));
  sim.Run();
  EXPECT_EQ(got, 1);
}

TEST(NodeLifecycleTest, PlanNodeEventsFireAsPodEvents) {
  SimulatorOptions opts;
  opts.faults.node_events.push_back(
      {10 * kMillisecond, 1, NodeFaultEvent::Kind::kCrash});
  opts.faults.node_events.push_back(
      {20 * kMillisecond, 1, NodeFaultEvent::Kind::kRestart});
  Simulator sim(opts);
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b);
  std::vector<Time> got;
  sim.RegisterHandler(b, "tuple", [&](const Message&) {
    got.push_back(sim.now());
  });
  // One send per 4ms; those launched in [10ms, 20ms) die (either swallowed
  // at delivery or dropped at send once the crash took the link down).
  for (Time t = 0; t < 28; t += 4) {
    sim.ScheduleAt(t * kMillisecond, [&sim, a, b] {
      sim.Send(Ping(&sim, a, b));
    });
  }
  sim.RunUntil(12 * kMillisecond);
  EXPECT_FALSE(sim.NodeUp(1));
  EXPECT_FALSE(sim.LinkUp(a, b));  // crash (not pause) takes links down
  sim.Run();
  EXPECT_TRUE(sim.NodeUp(1));
  EXPECT_TRUE(sim.LinkUp(a, b));
  // Delivered: sends at 0,4,8 (arrive 1,5,9) and 20,24 (arrive 21,25).
  // The send at 8ms arrives at 9ms, before the crash; 12/16 die.
  EXPECT_EQ(got, (std::vector<Time>{kMillisecond, 5 * kMillisecond,
                                    9 * kMillisecond, 21 * kMillisecond,
                                    25 * kMillisecond}));
}

TEST(NodeLifecycleTest, CrashIsDeterministicAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    SimulatorOptions opts;
    opts.num_threads = threads;
    opts.faults.node_events.push_back(
        {5 * kMillisecond, 2, NodeFaultEvent::Kind::kCrash});
    opts.faults.node_events.push_back(
        {15 * kMillisecond, 2, NodeFaultEvent::Kind::kRestart});
    Simulator sim(opts);
    const unsigned kNodes = 4;
    for (unsigned i = 0; i < kNodes; ++i) sim.AddNode();
    for (unsigned i = 0; i < kNodes; ++i) sim.AddLink(i, (i + 1) % kNodes);
    std::vector<std::vector<std::string>> logs(kNodes);
    for (unsigned n = 0; n < kNodes; ++n) {
      sim.RegisterHandler(n, "tuple", [&sim, &logs, n](Message& m) {
        const int64_t ttl = m.payload.field(1).as_int();
        logs[n].push_back(std::to_string(sim.now()) + ":" +
                          std::to_string(ttl));
        if (ttl > 0) sim.Send(Ping(&sim, n, (n + 1) % 4, ttl - 1));
      });
    }
    for (unsigned i = 0; i < kNodes; ++i) {
      sim.Send(Ping(&sim, i, (i + 1) % kNodes, /*tag=*/12));
    }
    sim.Run();
    ChannelFaultStats t = sim.total_fault_stats();
    EXPECT_EQ(t.sent, t.delivered + t.dropped_link + t.dropped_fault);
    return std::make_pair(logs, t.delivered);
  };
  const auto serial = run(1);
  EXPECT_GT(serial.second, 0u);
  for (unsigned threads : {2u, 4u}) {
    const auto t = run(threads);
    EXPECT_EQ(serial.first, t.first) << threads << " threads";
    EXPECT_EQ(serial.second, t.second);
  }
}

}  // namespace
}  // namespace net
}  // namespace nettrails
