#include "src/net/simulator.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace net {
namespace {

Message MakeMsg(NodeId src, NodeId dst, const std::string& channel = "tuple") {
  Message m;
  m.src = src;
  m.dst = dst;
  m.channel = channel;
  m.payload = Tuple("ping", {Value::Address(dst), Value::Int(1)});
  return m;
}

TEST(SimulatorTest, AddNodesAndLinks) {
  Simulator sim;
  NodeId a = sim.AddNode();
  NodeId b = sim.AddNode();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_FALSE(sim.HasLink(a, b));
  sim.AddLink(a, b);
  EXPECT_TRUE(sim.HasLink(a, b));
  EXPECT_TRUE(sim.HasLink(b, a));  // undirected
  EXPECT_TRUE(sim.LinkUp(a, b));
}

TEST(SimulatorTest, MessageDeliveredWithLatency) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b, 5 * kMillisecond);
  Time delivered_at = 0;
  sim.RegisterHandler(b, "tuple", [&](const Message& m) {
    delivered_at = sim.now();
    EXPECT_EQ(m.src, a);
  });
  EXPECT_TRUE(sim.Send(MakeMsg(a, b)));
  sim.Run();
  EXPECT_EQ(delivered_at, 5 * kMillisecond);
}

TEST(SimulatorTest, LocalDeliveryNeedsNoLink) {
  Simulator sim;
  NodeId a = sim.AddNode();
  bool got = false;
  sim.RegisterHandler(a, "tuple", [&](const Message&) { got = true; });
  EXPECT_TRUE(sim.Send(MakeMsg(a, a)));
  sim.Run();
  EXPECT_TRUE(got);
}

TEST(SimulatorTest, SendWithoutLinkDrops) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  EXPECT_FALSE(sim.Send(MakeMsg(a, b)));
  EXPECT_EQ(sim.dropped_messages(), 1u);
}

TEST(SimulatorTest, DownLinkDropsAndObserversFire) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b);
  std::vector<bool> events;
  sim.AddLinkObserver(
      [&](NodeId, NodeId, bool up) { events.push_back(up); });
  ASSERT_TRUE(sim.SetLinkUp(a, b, false).ok());
  EXPECT_FALSE(sim.LinkUp(a, b));
  EXPECT_FALSE(sim.Send(MakeMsg(a, b)));
  ASSERT_TRUE(sim.SetLinkUp(a, b, true).ok());
  EXPECT_TRUE(sim.Send(MakeMsg(a, b)));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0]);
  EXPECT_TRUE(events[1]);
  // Redundant transition: no event.
  ASSERT_TRUE(sim.SetLinkUp(a, b, true).ok());
  EXPECT_EQ(events.size(), 2u);
}

TEST(SimulatorTest, SetLinkUpUnknownLinkErrors) {
  Simulator sim;
  sim.AddNode();
  sim.AddNode();
  EXPECT_FALSE(sim.SetLinkUp(0, 1, false).ok());
}

TEST(SimulatorTest, OverlayChannelBypassesTopology) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.MarkOverlayChannel("provq", 2 * kMillisecond);
  Time delivered_at = 0;
  sim.RegisterHandler(b, "provq",
                      [&](const Message&) { delivered_at = sim.now(); });
  EXPECT_TRUE(sim.Send(MakeMsg(a, b, "provq")));
  sim.Run();
  EXPECT_EQ(delivered_at, 2 * kMillisecond);
}

TEST(SimulatorTest, TrafficAccountingPerChannelAndLink) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b);
  sim.RegisterHandler(b, "tuple", [](const Message&) {});
  sim.Send(MakeMsg(a, b));
  sim.Send(MakeMsg(a, b));
  sim.Run();
  auto it = sim.channel_traffic().find("tuple");
  ASSERT_NE(it, sim.channel_traffic().end());
  EXPECT_EQ(it->second.messages, 2u);
  EXPECT_GT(it->second.bytes, 0u);
  const LinkState* ls = sim.link(a, b);
  ASSERT_NE(ls, nullptr);
  EXPECT_EQ(ls->traffic.messages, 2u);
  EXPECT_EQ(sim.total_traffic().messages, 2u);
  sim.ResetTrafficStats();
  EXPECT_EQ(sim.total_traffic().messages, 0u);
  EXPECT_EQ(sim.link(a, b)->traffic.messages, 0u);
}

TEST(SimulatorTest, LocalDeliveryNotCountedAsTraffic) {
  Simulator sim;
  NodeId a = sim.AddNode();
  sim.RegisterHandler(a, "tuple", [](const Message&) {});
  sim.Send(MakeMsg(a, a));
  sim.Run();
  EXPECT_EQ(sim.total_traffic().messages, 0u);
}

TEST(SimulatorTest, SchedulingOrderAndTime) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(100, [&] { order.push_back(2); });
  sim.ScheduleAt(50, [&] { order.push_back(1); });
  sim.ScheduleAt(100, [&] { order.push_back(3); });  // FIFO tie-break
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.RunUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) sim.ScheduleAfter(1, recurse);
  };
  sim.ScheduleAfter(1, recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulatorTest, UpNeighbors) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode(), c = sim.AddNode();
  sim.AddLink(a, b);
  sim.AddLink(a, c);
  ASSERT_TRUE(sim.SetLinkUp(a, c, false).ok());
  std::vector<NodeId> nbrs = sim.UpNeighbors(a);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0], b);
}

}  // namespace
}  // namespace net
}  // namespace nettrails
