#include "src/net/simulator.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace net {
namespace {

Message MakeMsg(Simulator* sim, NodeId src, NodeId dst,
                const std::string& channel = "tuple") {
  Message m;
  m.src = src;
  m.dst = dst;
  m.channel = sim->InternChannel(channel);
  m.payload = Tuple("ping", {Value::Address(dst), Value::Int(1)});
  return m;
}

TEST(SimulatorTest, AddNodesAndLinks) {
  Simulator sim;
  NodeId a = sim.AddNode();
  NodeId b = sim.AddNode();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_FALSE(sim.HasLink(a, b));
  sim.AddLink(a, b);
  EXPECT_TRUE(sim.HasLink(a, b));
  EXPECT_TRUE(sim.HasLink(b, a));  // undirected
  EXPECT_TRUE(sim.LinkUp(a, b));
}

TEST(SimulatorTest, MessageDeliveredWithLatency) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b, 5 * kMillisecond);
  Time delivered_at = 0;
  sim.RegisterHandler(b, "tuple", [&](const Message& m) {
    delivered_at = sim.now();
    EXPECT_EQ(m.src, a);
  });
  EXPECT_TRUE(sim.Send(MakeMsg(&sim, a, b)));
  sim.Run();
  EXPECT_EQ(delivered_at, 5 * kMillisecond);
}

TEST(SimulatorTest, LocalDeliveryNeedsNoLink) {
  Simulator sim;
  NodeId a = sim.AddNode();
  bool got = false;
  sim.RegisterHandler(a, "tuple", [&](const Message&) { got = true; });
  EXPECT_TRUE(sim.Send(MakeMsg(&sim, a, a)));
  sim.Run();
  EXPECT_TRUE(got);
}

TEST(SimulatorTest, SendWithoutLinkDrops) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  EXPECT_FALSE(sim.Send(MakeMsg(&sim, a, b)));
  EXPECT_EQ(sim.dropped_messages(), 1u);
}

TEST(SimulatorTest, DownLinkDropsAndObserversFire) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b);
  std::vector<bool> events;
  sim.AddLinkObserver(
      [&](NodeId, NodeId, bool up) { events.push_back(up); });
  ASSERT_TRUE(sim.SetLinkUp(a, b, false).ok());
  EXPECT_FALSE(sim.LinkUp(a, b));
  EXPECT_FALSE(sim.Send(MakeMsg(&sim, a, b)));
  ASSERT_TRUE(sim.SetLinkUp(a, b, true).ok());
  EXPECT_TRUE(sim.Send(MakeMsg(&sim, a, b)));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0]);
  EXPECT_TRUE(events[1]);
  // Redundant transition: no event.
  ASSERT_TRUE(sim.SetLinkUp(a, b, true).ok());
  EXPECT_EQ(events.size(), 2u);
}

TEST(SimulatorTest, SetLinkUpUnknownLinkErrors) {
  Simulator sim;
  sim.AddNode();
  sim.AddNode();
  EXPECT_FALSE(sim.SetLinkUp(0, 1, false).ok());
}

TEST(SimulatorTest, OverlayChannelBypassesTopology) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.MarkOverlayChannel("provq", 2 * kMillisecond);
  Time delivered_at = 0;
  sim.RegisterHandler(b, "provq",
                      [&](const Message&) { delivered_at = sim.now(); });
  EXPECT_TRUE(sim.Send(MakeMsg(&sim, a, b, "provq")));
  sim.Run();
  EXPECT_EQ(delivered_at, 2 * kMillisecond);
}

TEST(SimulatorTest, TrafficAccountingPerChannelAndLink) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b);
  sim.RegisterHandler(b, "tuple", [](const Message&) {});
  sim.Send(MakeMsg(&sim, a, b));
  sim.Send(MakeMsg(&sim, a, b));
  sim.Run();
  // Dense-id accessor and the by-name compatibility view agree.
  const TrafficStats& ts = sim.channel_traffic(sim.InternChannel("tuple"));
  EXPECT_EQ(ts.messages, 2u);
  EXPECT_GT(ts.bytes, 0u);
  auto by_name = sim.ChannelTrafficByName();
  ASSERT_EQ(by_name.count("tuple"), 1u);
  EXPECT_EQ(by_name["tuple"].messages, 2u);
  EXPECT_EQ(by_name["tuple"].bytes, ts.bytes);
  const LinkState* ls = sim.link(a, b);
  ASSERT_NE(ls, nullptr);
  EXPECT_EQ(ls->traffic.messages, 2u);
  EXPECT_EQ(sim.total_traffic().messages, 2u);
  sim.ResetTrafficStats();
  EXPECT_EQ(sim.total_traffic().messages, 0u);
  EXPECT_EQ(sim.link(a, b)->traffic.messages, 0u);
}

TEST(SimulatorTest, LocalDeliveryNotCountedAsTraffic) {
  Simulator sim;
  NodeId a = sim.AddNode();
  sim.RegisterHandler(a, "tuple", [](const Message&) {});
  sim.Send(MakeMsg(&sim, a, a));
  sim.Run();
  EXPECT_EQ(sim.total_traffic().messages, 0u);
}

TEST(SimulatorTest, SchedulingOrderAndTime) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(100, [&] { order.push_back(2); });
  sim.ScheduleAt(50, [&] { order.push_back(1); });
  sim.ScheduleAt(100, [&] { order.push_back(3); });  // FIFO tie-break
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.RunUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) sim.ScheduleAfter(1, recurse);
  };
  sim.ScheduleAfter(1, recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulatorTest, UpNeighbors) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode(), c = sim.AddNode();
  sim.AddLink(a, b);
  sim.AddLink(a, c);
  ASSERT_TRUE(sim.SetLinkUp(a, c, false).ok());
  std::vector<NodeId> nbrs = sim.UpNeighbors(a);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0], b);
}

TEST(SimulatorTest, UpNeighborsCacheInvalidatesOnTopologyChange) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode(), c = sim.AddNode();
  sim.AddLink(a, b);
  EXPECT_EQ(sim.UpNeighbors(a), (std::vector<NodeId>{b}));
  sim.AddLink(a, c);  // topology change after a cached read
  EXPECT_EQ(sim.UpNeighbors(a), (std::vector<NodeId>{b, c}));
  ASSERT_TRUE(sim.SetLinkUp(a, b, false).ok());
  EXPECT_EQ(sim.UpNeighbors(a), (std::vector<NodeId>{c}));
  EXPECT_TRUE(sim.UpNeighbors(b).empty());
  // Out-of-range node: empty, no crash.
  EXPECT_TRUE(sim.UpNeighbors(99).empty());
}

// Satellite (a) regression: an event scheduled in the past must not move
// virtual time backwards. The old code only asserted (a no-op in Release);
// now the time is clamped to `now` and the incident is counted.
TEST(SimulatorTest, ScheduleInPastClampsToNowAndCounts) {
  Simulator sim;
  std::vector<Time> fire_times;
  sim.ScheduleAt(100, [&] {
    // From inside an event at t=100, schedule at t=30 (the past).
    sim.ScheduleAt(30, [&] { fire_times.push_back(sim.now()); });
  });
  sim.Run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], 100u);  // clamped, not time-travelled
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_EQ(sim.schedule_in_past(), 1u);
  sim.ResetEventStats();
  EXPECT_EQ(sim.schedule_in_past(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, ScheduleLinkChangeFiresAsPodEvent) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b);
  sim.ScheduleLinkChange(50, a, b, /*up=*/false);
  sim.ScheduleLinkChange(80, a, b, /*up=*/true);
  sim.ScheduleLinkChange(90, 7, 9, /*up=*/false);  // unknown link: ignored
  sim.RunUntil(60);
  EXPECT_FALSE(sim.LinkUp(a, b));
  sim.Run();
  EXPECT_TRUE(sim.LinkUp(a, b));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, FramePoolRecyclesFrames) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b);
  int delivered = 0;
  sim.RegisterHandler(b, "tuple", [&](const Message& m) {
    ++delivered;
    EXPECT_EQ(m.batch.size(), 2u);
  });
  ChannelId ch = sim.InternChannel("tuple");
  for (int i = 0; i < 100; ++i) {
    Simulator::FrameRef f = sim.AcquireFrame();
    Message& m = sim.FrameMessage(f);
    m.src = a;
    m.dst = b;
    m.channel = ch;
    m.batch.push_back({Tuple("t", {Value::Address(b), Value::Int(i)}), false, 1});
    m.batch.push_back({Tuple("t", {Value::Address(b), Value::Int(-i)}), true, 1});
    ASSERT_TRUE(sim.SendFrame(f));
    sim.Run();  // deliver before the next send: one frame in flight at a time
  }
  EXPECT_EQ(delivered, 100);
  // Sequential send/deliver cycles reuse one pooled frame, not 100.
  EXPECT_EQ(sim.frame_pool_size(), 1u);
  EXPECT_EQ(sim.frames_in_flight(), 0u);
}

TEST(SimulatorTest, ReleaseUnsentFrameReturnsItToPool) {
  Simulator sim;
  Simulator::FrameRef f = sim.AcquireFrame();
  EXPECT_EQ(sim.frames_in_flight(), 1u);
  sim.ReleaseFrame(f);
  EXPECT_EQ(sim.frames_in_flight(), 0u);
  EXPECT_EQ(sim.AcquireFrame(), f);  // recycled
}

TEST(SimulatorTest, DroppedFrameIsReleased) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();  // no link
  Simulator::FrameRef f = sim.AcquireFrame();
  Message& m = sim.FrameMessage(f);
  m.src = a;
  m.dst = b;
  m.channel = sim.InternChannel("tuple");
  EXPECT_FALSE(sim.SendFrame(f));
  EXPECT_EQ(sim.dropped_messages(), 1u);
  EXPECT_EQ(sim.frames_in_flight(), 0u);
}

// Satellite (c): determinism property — two identical runs over the POD
// event loop produce identical delivery orders, event counts, and traffic,
// including same-time FIFO ordering across frame sends and closures.
TEST(SimulatorTest, DeterministicReplayProperty) {
  auto run = [](std::vector<std::string>* log, TrafficStats* traffic,
                uint64_t* events) {
    Simulator sim;
    NodeId a = sim.AddNode(), b = sim.AddNode(), c = sim.AddNode();
    sim.AddLink(a, b, kMillisecond);
    sim.AddLink(a, c, kMillisecond);
    sim.AddLink(b, c, 2 * kMillisecond);
    auto handler = [&, log](const Message& m) {
      log->push_back("recv@" + std::to_string(m.dst) + ":" +
                     std::to_string(sim.now()) + ":" +
                     std::to_string(m.payload.field(1).as_int()));
      // Same-time cascade: forward once from b to c.
      if (m.dst == 1 && m.payload.field(1).as_int() < 10) {
        Message fwd;
        fwd.src = 1;
        fwd.dst = 2;
        fwd.channel = m.channel;
        fwd.payload = Tuple("ping", {Value::Address(2), Value::Int(100)});
        sim.Send(std::move(fwd));
      }
    };
    sim.RegisterHandler(b, "tuple", handler);
    sim.RegisterHandler(c, "tuple", handler);
    // Mix closures and sends at identical timestamps.
    for (int i = 0; i < 8; ++i) {
      sim.ScheduleAt(10 * kMillisecond, [&sim, log, i] {
        log->push_back("timer:" + std::to_string(i) + ":" +
                       std::to_string(sim.now()));
      });
      sim.Send(MakeMsg(&sim, a, i % 2 == 0 ? b : c));
    }
    sim.ScheduleLinkChange(5 * kMillisecond, a, b, false);
    sim.Run();
    *traffic = sim.total_traffic();
    *events = sim.events_executed();
  };
  std::vector<std::string> log1, log2;
  TrafficStats t1, t2;
  uint64_t e1 = 0, e2 = 0;
  run(&log1, &t1, &e1);
  run(&log2, &t2, &e2);
  EXPECT_FALSE(log1.empty());
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(t1.messages, t2.messages);
  EXPECT_EQ(t1.bytes, t2.bytes);
  EXPECT_EQ(t1.tuples, t2.tuples);
}

TEST(SimulatorTest, HandlerMayMoveTuplesOutOfFrame) {
  Simulator sim;
  NodeId a = sim.AddNode(), b = sim.AddNode();
  sim.AddLink(a, b);
  ValueList stolen;
  sim.RegisterHandler(b, "tuple", [&](Message& m) {
    stolen = std::move(m.payload.mutable_fields());
  });
  sim.Send(MakeMsg(&sim, a, b));
  sim.Run();
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[1].as_int(), 1);
}

// Conservation invariant: at quiescence every frame that entered SendFrame
// is accounted exactly once per channel —
//   sent == delivered + dropped_link + dropped_fault
// with injected fault drops and down-node swallows counted separately
// (dropped_fault) from sender-visible no-up-link drops (dropped_link).
TEST(SimulatorTest, FaultConservationPerChannel) {
  SimulatorOptions opts;
  opts.faults.seed = 42;
  opts.faults.spec.drop_per_10k = 1500;
  opts.faults.spec.dup_per_10k = 1000;
  opts.faults.spec.delay_per_10k = 800;
  opts.faults.spec.delay_jitter_max = 500;
  opts.faults.spec.reorder_per_10k = 500;
  opts.faults.spec.reorder_hold = 2 * kMillisecond;
  Simulator sim(opts);
  NodeId a = sim.AddNode(), b = sim.AddNode(), c = sim.AddNode();
  sim.AddLink(a, b);
  sim.AddLink(a, c);
  uint64_t handled_tuple = 0, handled_ctrl = 0;
  for (NodeId n : {b, c}) {
    sim.RegisterHandler(n, "tuple", [&](const Message&) { ++handled_tuple; });
    sim.RegisterHandler(n, "ctrl", [&](const Message&) { ++handled_ctrl; });
  }
  for (int i = 0; i < 300; ++i) {
    sim.Send(MakeMsg(&sim, a, i % 2 == 0 ? b : c));
  }
  for (int i = 0; i < 100; ++i) {
    sim.Send(MakeMsg(&sim, a, i % 2 == 0 ? b : c, "ctrl"));
  }
  sim.Run();
  // Sender-visible link drops: link a-c down, sends fail.
  ASSERT_TRUE(sim.SetLinkUp(a, c, false).ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(sim.Send(MakeMsg(&sim, a, c)));
  }
  // Paused destination: frames travel but are consumed by the fault layer.
  ASSERT_TRUE(sim.SetNodeUp(b, false, /*with_links=*/false).ok());
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(sim.Send(MakeMsg(&sim, a, b)));
  }
  sim.Run();
  ASSERT_TRUE(sim.SetNodeUp(b, true).ok());

  auto by_name = sim.ChannelFaultStatsByName();
  ASSERT_EQ(by_name.count("tuple"), 1u);
  ASSERT_EQ(by_name.count("ctrl"), 1u);
  const ChannelFaultStats& ts = by_name["tuple"];
  const ChannelFaultStats& cs = by_name["ctrl"];
  EXPECT_EQ(ts.sent, ts.delivered + ts.dropped_link + ts.dropped_fault);
  EXPECT_EQ(cs.sent, cs.delivered + cs.dropped_link + cs.dropped_fault);
  // Handlers ran exactly once per delivered frame (swallowed ones never
  // reach a handler).
  EXPECT_EQ(ts.delivered, handled_tuple);
  EXPECT_EQ(cs.delivered, handled_ctrl);
  EXPECT_EQ(ts.dropped_link, 20u);
  EXPECT_EQ(cs.dropped_link, 0u);
  // The paused-node swallows guarantee fault drops even if the seeded drop
  // rate happened to fire rarely.
  EXPECT_GE(ts.dropped_fault, 30u);
  EXPECT_GT(ts.duplicated, 0u);
  EXPECT_GT(ts.delayed, 0u);
  // Duplicates are their own sends: sent exceeds the frames we issued.
  EXPECT_EQ(ts.sent, 350u + ts.duplicated);
  const ChannelFaultStats total = sim.total_fault_stats();
  EXPECT_EQ(total.sent,
            total.delivered + total.dropped_link + total.dropped_fault);
  EXPECT_EQ(total.sent, ts.sent + cs.sent);
}

// Pin the in-flight semantics of a link going down: frames already in
// flight when the link drops are still delivered (they left the NIC);
// only subsequent sends are dropped. Identical at 1 and 4 threads.
TEST(SimulatorTest, LinkDownWithFramesInFlightStillDelivers) {
  auto run = [](unsigned threads, std::vector<std::string>* log,
                uint64_t* dropped) {
    SimulatorOptions opts;
    opts.num_threads = threads;
    Simulator sim(opts);
    NodeId a = sim.AddNode(), b = sim.AddNode();
    sim.AddLink(a, b, 5 * kMillisecond);
    sim.RegisterHandler(b, "tuple", [&, log](Message& m) {
      log->push_back("recv:" + std::to_string(sim.now()) + ":" +
                     std::to_string(m.payload.field(1).as_int()));
    });
    // Two frames leave the NIC at t=0; the link drops at t=2ms while both
    // are in flight.
    sim.Send(MakeMsg(&sim, a, b));
    sim.Send(MakeMsg(&sim, a, b));
    sim.ScheduleLinkChange(2 * kMillisecond, a, b, /*up=*/false);
    // A send issued after the drop (t=3ms) must fail.
    sim.ScheduleAt(3 * kMillisecond, [&] {
      EXPECT_FALSE(sim.Send(MakeMsg(&sim, a, b)));
    });
    sim.Run();
    *dropped = sim.dropped_messages();
  };
  std::vector<std::string> log1, log4;
  uint64_t d1 = 0, d4 = 0;
  run(1, &log1, &d1);
  run(4, &log4, &d4);
  ASSERT_EQ(log1.size(), 2u);  // both in-flight frames delivered
  EXPECT_EQ(log1[0], "recv:5000:1");
  EXPECT_EQ(d1, 1u);  // only the post-drop send was lost
  EXPECT_EQ(log1, log4);
  EXPECT_EQ(d1, d4);
}

}  // namespace
}  // namespace net
}  // namespace nettrails
