#include "src/net/scenario.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace net {
namespace {

std::string SrcPath(const std::string& rel) {
  return std::string(NETTRAILS_SOURCE_DIR) + "/" + rel;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------------
// Parser / serializer properties

TEST(ScenarioParseTest, ParsesEventsWithAllUnitsAndComments) {
  Result<Scenario> s = ParseScenario(
      "# header comment\n"
      "scenario demo\n"
      "at 500us fail 3   # trailing comment\n"
      "\n"
      "at 20ms recover 3\n"
      "at 2s crash 1\n");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->name, "demo");
  ASSERT_EQ(s->events.size(), 3u);
  EXPECT_EQ(s->events[0].time, 500u);
  EXPECT_EQ(s->events[0].action, ScenarioAction::kFailLink);
  EXPECT_EQ(s->events[0].index, 3u);
  EXPECT_EQ(s->events[1].time, 20 * kMillisecond);
  EXPECT_EQ(s->events[1].action, ScenarioAction::kRecoverLink);
  EXPECT_EQ(s->events[2].time, 2 * kSecond);
  EXPECT_EQ(s->events[2].action, ScenarioAction::kCrashNode);
}

TEST(ScenarioParseTest, SerializeParseRoundTripsBitForBit) {
  Scenario s;
  s.name = "rt";
  s.events = {{500, ScenarioAction::kFailLink, 3},
              {1500 * kMillisecond, ScenarioAction::kRecoverLink, 3},
              {2 * kSecond, ScenarioAction::kCrashNode, 1},
              {2 * kSecond, ScenarioAction::kRestartNode, 1}};
  const std::string text = SerializeScenario(s);
  Result<Scenario> back = ParseScenario(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(SerializeScenario(*back), text);
  EXPECT_EQ(back->name, s.name);
  ASSERT_EQ(back->events.size(), s.events.size());
  for (size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(back->events[i].time, s.events[i].time) << i;
    EXPECT_EQ(back->events[i].action, s.events[i].action) << i;
    EXPECT_EQ(back->events[i].index, s.events[i].index) << i;
  }
}

TEST(ScenarioParseTest, TimesRenderInTheLargestExactUnit) {
  Scenario s;
  s.events = {{1500, ScenarioAction::kFailLink, 0},
              {2000, ScenarioAction::kFailLink, 0},
              {1500 * kMillisecond, ScenarioAction::kFailLink, 0},
              {3 * kSecond, ScenarioAction::kFailLink, 0}};
  EXPECT_EQ(SerializeScenario(s),
            "at 1500us fail 0\n"
            "at 2ms fail 0\n"
            "at 1500ms fail 0\n"
            "at 3s fail 0\n");
}

TEST(ScenarioParseTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* want;  // substring of the error message
  };
  const Case cases[] = {
      {"at 5ms explode 1\n", "line 1"},
      {"at 5ms fail 1\nat 5 fail 2\n", "line 2"},          // missing unit
      {"at 5ms fail 1\nat 4ms fail 2\n", "non-decreasing"},
      {"at 5ms fail 1\nscenario late\n", "precede"},
      {"scenario a\nscenario b\nat 1ms fail 0\n", "duplicate"},
      {"bogus directive\n", "unknown directive"},
      {"scenario empty\n", "no events"},
      {"at 99999999999999999999s fail 0\n", "line 1"},     // overflow
  };
  for (const Case& c : cases) {
    Result<Scenario> s = ParseScenario(c.text);
    ASSERT_FALSE(s.ok()) << c.text;
    EXPECT_NE(s.status().message().find(c.want), std::string::npos)
        << "error for {" << c.text << "} was: " << s.status().message();
  }
}

TEST(ScenarioParseTest, LoadPrefixesErrorsWithThePath) {
  Result<Scenario> missing = LoadScenarioFile("/nonexistent/x.scn");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("/nonexistent/x.scn"),
            std::string::npos);
}

/// The committed corpus is stored in canonical form: loading and
/// re-serializing each file reproduces it byte for byte (minus comments —
/// the corpus files carry a comment header, so compare canonical forms).
TEST(ScenarioParseTest, CommittedCorpusRoundTripsCanonically) {
  for (const char* name : {"flap_churn", "regional_storm", "crash_restart"}) {
    const std::string path =
        SrcPath(std::string("examples/scenarios/") + name + ".scn");
    Result<Scenario> s = LoadScenarioFile(path);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    EXPECT_EQ(s->name, name);
    EXPECT_FALSE(s->events.empty());
    Result<Scenario> back = ParseScenario(SerializeScenario(*s));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(SerializeScenario(*back), SerializeScenario(*s)) << name;
  }
}

// ---------------------------------------------------------------------------
// Runner semantics

struct World {
  Simulator sim;
  Topology topo;
  runtime::CompiledProgramPtr prog;
  std::vector<std::unique_ptr<runtime::Engine>> engines;

  explicit World(Topology t) : topo(std::move(t)) {
    Result<runtime::CompiledProgramPtr> compiled =
        runtime::Compile(protocols::MincostProgram());
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    prog = *compiled;
    engines = protocols::MakeEngines(&sim, topo, prog);
    EXPECT_TRUE(protocols::InstallLinks(topo, &engines, &sim).ok());
  }

  std::string Fingerprint() const {
    std::string out;
    for (const auto& e : engines) {
      out += "== node " + std::to_string(e->id()) + "\n";
      for (const auto& [name, info] : e->program().tables) {
        if (!info.materialized) continue;
        for (const Tuple& t : e->TableContents(name)) {
          out += t.ToString() + " x" + std::to_string(e->CountOf(t)) + "\n";
        }
      }
    }
    return out;
  }
};

Scenario Scn(std::vector<ScenarioEvent> events) {
  Scenario s;
  s.name = "test";
  s.events = std::move(events);
  return s;
}

TEST(ScenarioRunTest, FullyRecoveredChurnReachesTheUnchurnedFixpoint) {
  World churned(MakeRing(6, 1));
  const std::string before = churned.Fingerprint();
  Result<ScenarioRunStats> stats = RunScenario(
      Scn({{300 * kMillisecond, ScenarioAction::kFailLink, 0},
           {600 * kMillisecond, ScenarioAction::kRecoverLink, 0},
           {601 * kMillisecond, ScenarioAction::kFailLink, 4},
           {900 * kMillisecond, ScenarioAction::kRecoverLink, 4}}),
      churned.topo, &churned.engines, &churned.sim);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->applied, 4u);
  EXPECT_EQ(stats->skipped, 0u);
  EXPECT_EQ(churned.Fingerprint(), before);
}

TEST(ScenarioRunTest, IndicesReduceModuloTopologySize) {
  World w(MakeRing(6, 1));
  const std::string before = w.Fingerprint();
  // links.size() == 6: index 13 is link 1.
  Result<ScenarioRunStats> stats = RunScenario(
      Scn({{300 * kMillisecond, ScenarioAction::kFailLink, 13},
           {600 * kMillisecond, ScenarioAction::kRecoverLink, 1}}),
      w.topo, &w.engines, &w.sim);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 2u);  // recover matches the reduced fail
  EXPECT_EQ(w.Fingerprint(), before);
}

TEST(ScenarioRunTest, InapplicableEventsAreSkippedDeterministically) {
  World w(MakeRing(6, 1));
  Result<ScenarioRunStats> stats = RunScenario(
      Scn({{300 * kMillisecond, ScenarioAction::kRecoverLink, 0},  // live
           {310 * kMillisecond, ScenarioAction::kFailLink, 0},
           {320 * kMillisecond, ScenarioAction::kFailLink, 0},     // down
           {330 * kMillisecond, ScenarioAction::kRestartNode, 2},  // running
           {400 * kMillisecond, ScenarioAction::kRecoverLink, 0}}),
      w.topo, &w.engines, &w.sim);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 2u);
  EXPECT_EQ(stats->skipped, 3u);
}

TEST(ScenarioRunTest, CrashAndRestartMatchesTheDirectProtocolCalls) {
  // Reference: the same crash/churn/restart sequence issued directly
  // through the protocols:: helpers (the chaos-suite style).
  World ref(MakeRingWithChords(6, 1, 2));
  runtime::EngineCheckpoint ckpt = ref.engines[2]->TakeCheckpoint();
  ASSERT_TRUE(
      protocols::CrashNode(2, ref.topo, &ref.engines, &ref.sim).ok());
  const CostedLink& l = ref.topo.links[0];  // (0,1): not incident to 2
  ASSERT_TRUE(
      protocols::FailLink(l.a, l.b, l.cost, &ref.engines, &ref.sim).ok());
  ASSERT_TRUE(
      protocols::RecoverLink(l.a, l.b, l.cost, &ref.engines, &ref.sim).ok());
  ASSERT_TRUE(protocols::RestartNode(2, ckpt, ref.topo, &ref.engines,
                                     &ref.sim)
                  .ok());

  World w(MakeRingWithChords(6, 1, 2));
  Result<ScenarioRunStats> stats = RunScenario(
      Scn({{300 * kMillisecond, ScenarioAction::kCrashNode, 2},
           {600 * kMillisecond, ScenarioAction::kFailLink, 0},
           {900 * kMillisecond, ScenarioAction::kRecoverLink, 0},
           {1200 * kMillisecond, ScenarioAction::kRestartNode, 2}}),
      w.topo, &w.engines, &w.sim);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->applied, 4u);
  EXPECT_EQ(w.Fingerprint(), ref.Fingerprint());
}

TEST(ScenarioRunTest, ChurnTouchingACrashedNodeIsSkipped) {
  World w(MakeRingWithChords(6, 1, 2));
  // Link 0 is (0,1); crash node 0, then try to fail/recover its link.
  Result<ScenarioRunStats> stats = RunScenario(
      Scn({{300 * kMillisecond, ScenarioAction::kCrashNode, 0},
           {400 * kMillisecond, ScenarioAction::kFailLink, 0},
           {500 * kMillisecond, ScenarioAction::kRecoverLink, 0},
           {600 * kMillisecond, ScenarioAction::kRestartNode, 0}}),
      w.topo, &w.engines, &w.sim);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 2u);  // crash + restart
  EXPECT_EQ(stats->skipped, 2u);
  // After restart the world must equal the untouched fixpoint.
  World fresh(MakeRingWithChords(6, 1, 2));
  EXPECT_EQ(w.Fingerprint(), fresh.Fingerprint());
}

TEST(ScenarioRunTest, RejectsMismatchedEngineCount) {
  World w(MakeRing(4, 1));
  Topology other = MakeRing(6, 1);
  Result<ScenarioRunStats> stats = RunScenario(
      Scn({{300 * kMillisecond, ScenarioAction::kFailLink, 0}}), other,
      &w.engines, &w.sim);
  EXPECT_FALSE(stats.ok());
}

}  // namespace
}  // namespace net
}  // namespace nettrails
