#include "src/net/topology.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

namespace nettrails {
namespace net {
namespace {

// Union-find connectivity check.
bool IsConnected(const Topology& t) {
  if (t.num_nodes == 0) return true;
  std::vector<size_t> parent(t.num_nodes);
  for (size_t i = 0; i < t.num_nodes; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const CostedLink& l : t.links) parent[find(l.a)] = find(l.b);
  size_t root = find(0);
  for (size_t i = 1; i < t.num_nodes; ++i) {
    if (find(i) != root) return false;
  }
  return true;
}

TEST(TopologyTest, Line) {
  Topology t = MakeLine(5, 3);
  EXPECT_EQ(t.num_nodes, 5u);
  EXPECT_EQ(t.links.size(), 4u);
  for (const CostedLink& l : t.links) EXPECT_EQ(l.cost, 3);
  EXPECT_TRUE(IsConnected(t));
}

TEST(TopologyTest, Ring) {
  Topology t = MakeRing(6);
  EXPECT_EQ(t.links.size(), 6u);
  EXPECT_TRUE(IsConnected(t));
  // Degree 2 everywhere.
  std::vector<int> degree(6, 0);
  for (const CostedLink& l : t.links) {
    degree[l.a]++;
    degree[l.b]++;
  }
  for (int d : degree) EXPECT_EQ(d, 2);
}

TEST(TopologyTest, TinyRingHasNoDuplicateEdge) {
  Topology t = MakeRing(2);
  EXPECT_EQ(t.links.size(), 1u);
}

TEST(TopologyTest, RingWithChordsAddsChords) {
  Topology ring = MakeRing(8);
  Topology t = MakeRingWithChords(8);
  EXPECT_GT(t.links.size(), ring.links.size());
  EXPECT_TRUE(IsConnected(t));
}

TEST(TopologyTest, Star) {
  Topology t = MakeStar(5);
  EXPECT_EQ(t.links.size(), 4u);
  for (const CostedLink& l : t.links) EXPECT_EQ(l.a, 0u);
  EXPECT_TRUE(IsConnected(t));
}

TEST(TopologyTest, Grid) {
  Topology t = MakeGrid(3, 4);
  EXPECT_EQ(t.num_nodes, 12u);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
  EXPECT_EQ(t.links.size(), 17u);
  EXPECT_TRUE(IsConnected(t));
}

TEST(TopologyTest, RandomConnectedIsConnectedAcrossSeeds) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Topology t = MakeRandomConnected(20, 0.1, &rng);
    EXPECT_EQ(t.num_nodes, 20u);
    EXPECT_GE(t.links.size(), 19u);  // at least the spanning tree
    EXPECT_TRUE(IsConnected(t)) << "seed " << seed;
    for (const CostedLink& l : t.links) {
      EXPECT_GE(l.cost, 1);
      EXPECT_LE(l.cost, 10);
      EXPECT_NE(l.a, l.b);
    }
  }
}

TEST(TopologyTest, InstallRegistersNodesAndLinks) {
  Simulator sim;
  Topology t = MakeRing(4);
  t.Install(&sim);
  EXPECT_EQ(sim.node_count(), 4u);
  EXPECT_EQ(sim.Links().size(), 4u);
  EXPECT_TRUE(sim.HasLink(0, 3));
}

TEST(TopologyTest, SyntheticIspIsConnectedAndSized) {
  Topology t = MakeSyntheticIsp(12, 10, 9, 42);
  EXPECT_EQ(t.num_nodes, 12u + 10u * 9u);
  // Core ring + 2 chords + 10 regional rings + 2 uplinks per region.
  EXPECT_EQ(t.links.size(), 12u + 2u + 10u * 9u + 10u * 2u);
  EXPECT_TRUE(IsConnected(t));
  // Dual-homing: removing any single link keeps the graph connected.
  for (size_t drop = 0; drop < t.links.size(); ++drop) {
    Topology cut = t;
    cut.links.erase(cut.links.begin() + static_cast<ptrdiff_t>(drop));
    EXPECT_TRUE(IsConnected(cut)) << "bridge at link " << drop;
  }
}

TEST(TopologyTest, SyntheticIspIsSeedDeterministic) {
  EXPECT_EQ(SerializeTopology(MakeSyntheticIsp(12, 10, 9, 42)),
            SerializeTopology(MakeSyntheticIsp(12, 10, 9, 42)));
  EXPECT_NE(SerializeTopology(MakeSyntheticIsp(12, 10, 9, 42)),
            SerializeTopology(MakeSyntheticIsp(12, 10, 9, 43)));
}

// ---------------------------------------------------------------------------
// File format

std::string SrcPath(const std::string& rel) {
  return std::string(NETTRAILS_SOURCE_DIR) + "/" + rel;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TopologyFileTest, ParsesNamesLabelsCommentsAndDefaultCosts) {
  Result<Topology> t = ParseTopology(
      "# a comment\n"
      "topology demo\n"
      "nodes 3\n"
      "name 0 alpha\n"
      "link 0 1       # cost defaults to 1\n"
      "link 1 2 7\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->name, "demo");
  EXPECT_EQ(t->num_nodes, 3u);
  ASSERT_EQ(t->labels.size(), 1u);
  EXPECT_EQ(t->labels.at(0), "alpha");
  ASSERT_EQ(t->links.size(), 2u);
  EXPECT_EQ(t->links[0].cost, 1);
  EXPECT_EQ(t->links[1].cost, 7);
}

TEST(TopologyFileTest, SerializationIsCanonicalAndOrderInsensitive) {
  // Same graph, scrambled link order and flipped endpoints.
  Result<Topology> a = ParseTopology(
      "nodes 4\nlink 2 3 5\nlink 1 0\nlink 3 0 2\n");
  Result<Topology> b = ParseTopology(
      "nodes 4\nlink 0 1\nlink 0 3 2\nlink 3 2 5\n");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(SerializeTopology(*a), SerializeTopology(*b));
  // Serialize -> parse -> serialize is the identity on canonical text.
  Result<Topology> back = ParseTopology(SerializeTopology(*a));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(SerializeTopology(*back), SerializeTopology(*a));
}

TEST(TopologyFileTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* want;
  };
  const Case cases[] = {
      {"nodes 3\nnodes 4\n", "line 2"},
      {"link 0 1\nnodes 3\n", "`link` before `nodes`"},
      {"name 0 x\nnodes 3\n", "`name` before `nodes`"},
      {"nodes 0\n", "positive"},
      {"nodes 3\nlink 0 3\n", "out of range"},
      {"nodes 3\nlink 1 1\n", "self-link"},
      {"nodes 3\nlink 0 1\nlink 1 0 5\n", "duplicate link"},
      {"nodes 3\nname 0 a\nname 0 b\n", "duplicate label"},
      {"nodes 3\nlink 0 1 0\n", "cost"},
      {"nodes 3\nfrobnicate\n", "unknown directive"},
      {"topology x\n", "missing `nodes`"},
      {"nodes 3\ntopology late\n", "precede"},
  };
  for (const Case& c : cases) {
    Result<Topology> t = ParseTopology(c.text);
    ASSERT_FALSE(t.ok()) << c.text;
    EXPECT_NE(t.status().message().find(c.want), std::string::npos)
        << "error for {" << c.text << "} was: " << t.status().message();
  }
}

TEST(TopologyFileTest, LoadPrefixesErrorsWithThePath) {
  Result<Topology> missing = LoadTopologyFile("/nonexistent/x.topo");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("/nonexistent/x.topo"),
            std::string::npos);
}

/// Every committed corpus topology is stored canonically: loading and
/// re-serializing reproduces the file byte for byte. This pins the corpus
/// to the canonical form so graph-identity == byte-identity for reviewers.
TEST(TopologyFileTest, CommittedCorpusIsCanonicalAndConnected) {
  for (const char* name :
       {"abilene", "att_na", "ring12", "grid3x3", "isp_synth_102"}) {
    const std::string path =
        SrcPath(std::string("examples/topologies/") + name + ".topo");
    Result<Topology> t = LoadTopologyFile(path);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_GT(t->num_nodes, 0u);
    EXPECT_TRUE(IsConnected(*t)) << name;
    EXPECT_EQ(SerializeTopology(*t), ReadFile(path)) << name;
  }
}

/// The generator-exported corpus files are cross-checked against the
/// generators: regenerating must reproduce the committed bytes.
TEST(TopologyFileTest, GeneratorExportsMatchCommittedFiles) {
  Topology ring = MakeRing(12, 1);
  ring.name = "ring12";
  EXPECT_EQ(SerializeTopology(ring),
            ReadFile(SrcPath("examples/topologies/ring12.topo")));
  Topology grid = MakeGrid(3, 3, 1);
  grid.name = "grid3x3";
  EXPECT_EQ(SerializeTopology(grid),
            ReadFile(SrcPath("examples/topologies/grid3x3.topo")));
  Topology isp = MakeSyntheticIsp(12, 10, 9, 42);
  isp.name = "isp-synth-102";
  EXPECT_EQ(SerializeTopology(isp),
            ReadFile(SrcPath("examples/topologies/isp_synth_102.topo")));
}

}  // namespace
}  // namespace net
}  // namespace nettrails
