#include "src/net/topology.h"

#include <gtest/gtest.h>

#include <set>

namespace nettrails {
namespace net {
namespace {

// Union-find connectivity check.
bool IsConnected(const Topology& t) {
  if (t.num_nodes == 0) return true;
  std::vector<size_t> parent(t.num_nodes);
  for (size_t i = 0; i < t.num_nodes; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const CostedLink& l : t.links) parent[find(l.a)] = find(l.b);
  size_t root = find(0);
  for (size_t i = 1; i < t.num_nodes; ++i) {
    if (find(i) != root) return false;
  }
  return true;
}

TEST(TopologyTest, Line) {
  Topology t = MakeLine(5, 3);
  EXPECT_EQ(t.num_nodes, 5u);
  EXPECT_EQ(t.links.size(), 4u);
  for (const CostedLink& l : t.links) EXPECT_EQ(l.cost, 3);
  EXPECT_TRUE(IsConnected(t));
}

TEST(TopologyTest, Ring) {
  Topology t = MakeRing(6);
  EXPECT_EQ(t.links.size(), 6u);
  EXPECT_TRUE(IsConnected(t));
  // Degree 2 everywhere.
  std::vector<int> degree(6, 0);
  for (const CostedLink& l : t.links) {
    degree[l.a]++;
    degree[l.b]++;
  }
  for (int d : degree) EXPECT_EQ(d, 2);
}

TEST(TopologyTest, TinyRingHasNoDuplicateEdge) {
  Topology t = MakeRing(2);
  EXPECT_EQ(t.links.size(), 1u);
}

TEST(TopologyTest, RingWithChordsAddsChords) {
  Topology ring = MakeRing(8);
  Topology t = MakeRingWithChords(8);
  EXPECT_GT(t.links.size(), ring.links.size());
  EXPECT_TRUE(IsConnected(t));
}

TEST(TopologyTest, Star) {
  Topology t = MakeStar(5);
  EXPECT_EQ(t.links.size(), 4u);
  for (const CostedLink& l : t.links) EXPECT_EQ(l.a, 0u);
  EXPECT_TRUE(IsConnected(t));
}

TEST(TopologyTest, Grid) {
  Topology t = MakeGrid(3, 4);
  EXPECT_EQ(t.num_nodes, 12u);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
  EXPECT_EQ(t.links.size(), 17u);
  EXPECT_TRUE(IsConnected(t));
}

TEST(TopologyTest, RandomConnectedIsConnectedAcrossSeeds) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Topology t = MakeRandomConnected(20, 0.1, &rng);
    EXPECT_EQ(t.num_nodes, 20u);
    EXPECT_GE(t.links.size(), 19u);  // at least the spanning tree
    EXPECT_TRUE(IsConnected(t)) << "seed " << seed;
    for (const CostedLink& l : t.links) {
      EXPECT_GE(l.cost, 1);
      EXPECT_LE(l.cost, 10);
      EXPECT_NE(l.a, l.b);
    }
  }
}

TEST(TopologyTest, InstallRegistersNodesAndLinks) {
  Simulator sim;
  Topology t = MakeRing(4);
  t.Install(&sim);
  EXPECT_EQ(sim.node_count(), 4u);
  EXPECT_EQ(sim.Links().size(), 4u);
  EXPECT_TRUE(sim.HasLink(0, 3));
}

}  // namespace
}  // namespace net
}  // namespace nettrails
