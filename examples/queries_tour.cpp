// Experiment E6/E7 companion: a guided tour of the three provenance query
// types (lineage, participating node set, derivation count) and of the
// ExSPAN query optimizations (result caching, traversal orders,
// threshold-based pruning), with the network traffic of every variant
// printed side by side.
//
//   $ ./queries_tour [nodes]
#include <cstdio>
#include <cstdlib>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/query/parser.h"
#include "src/query/query_engine.h"
#include "src/runtime/plan.h"

using namespace nettrails;

namespace {

const char* TypeName(query::QueryType t) {
  switch (t) {
    case query::QueryType::kLineage:
      return "lineage";
    case query::QueryType::kNodeSet:
      return "node-set";
    case query::QueryType::kDerivCount:
      return "deriv-count";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;

  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::PathVectorProgram());
  if (!prog.ok()) {
    std::fprintf(stderr, "%s\n", prog.status().ToString().c_str());
    return 1;
  }
  net::Simulator sim;
  Rng rng(4242);
  net::Topology topo = net::MakeRandomConnected(n, 0.12, &rng, 5);
  auto engines = protocols::MakeEngines(&sim, topo, *prog);
  query::ProvenanceQuerier querier(&sim, protocols::EnginePtrs(engines));
  if (!protocols::InstallLinks(topo, &engines, &sim).ok()) return 1;

  // Pick the path tuple with the longest hop count at node 0.
  Tuple target;
  size_t longest = 0;
  for (const Tuple& t : engines[0]->TableContents("path")) {
    size_t hops = t.field(3).as_list().size();
    if (hops > longest) {
      longest = hops;
      target = t;
    }
  }
  if (longest == 0) return 1;
  std::printf("query target: %s\n\n", target.ToString().c_str());

  // --- the three query types ---
  std::printf("%-12s %10s %9s %12s  result\n", "type", "messages", "bytes",
              "latency(us)");
  for (query::QueryType type :
       {query::QueryType::kLineage, query::QueryType::kNodeSet,
        query::QueryType::kDerivCount}) {
    query::QueryOptions opts;
    opts.type = type;
    opts.use_cache = false;
    Result<query::QueryResult> r = querier.Query(target, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::string result;
    if (type == query::QueryType::kLineage) {
      result = std::to_string(r->leaf_tuples.size()) + " base tuples";
    } else if (type == query::QueryType::kNodeSet) {
      result = std::to_string(r->nodes.size()) + " nodes";
    } else {
      result = std::to_string(r->count) + " derivations";
    }
    std::printf("%-12s %10llu %9llu %12llu  %s\n", TypeName(type),
                (unsigned long long)r->messages,
                (unsigned long long)r->bytes,
                (unsigned long long)r->latency, result.c_str());
  }

  // --- caching ---
  std::printf("\ncaching (lineage, repeated 3x):\n");
  for (bool cached : {false, true}) {
    querier.ClearCaches();
    uint64_t msgs[3];
    for (int i = 0; i < 3; ++i) {
      query::QueryOptions opts;
      opts.type = query::QueryType::kLineage;
      opts.use_cache = cached;
      Result<query::QueryResult> r = querier.Query(target, opts);
      msgs[i] = r.ok() ? r->messages : 0;
    }
    std::printf("  cache %-3s: %llu, %llu, %llu messages\n",
                cached ? "on" : "off", (unsigned long long)msgs[0],
                (unsigned long long)msgs[1], (unsigned long long)msgs[2]);
  }

  // --- traversal orders ---
  std::printf("\ntraversal order (deriv-count, cache off):\n");
  for (query::Traversal trav :
       {query::Traversal::kSequential, query::Traversal::kParallel}) {
    query::QueryOptions opts;
    opts.type = query::QueryType::kDerivCount;
    opts.traversal = trav;
    opts.use_cache = false;
    Result<query::QueryResult> r = querier.Query(target, opts);
    if (!r.ok()) continue;
    std::printf("  %-10s: %llu messages, latency %llu us, count %lld\n",
                trav == query::Traversal::kSequential ? "sequential"
                                                      : "parallel",
                (unsigned long long)r->messages,
                (unsigned long long)r->latency, (long long)r->count);
  }

  // --- the textual query language (distributed ProQL-flavored frontend) ---
  std::printf("\ntextual queries:\n");
  for (std::string text : {
           "LINEAGE OF " + target.ToString(),
           "NODES OF " + target.ToString() + " NOCACHE",
           "COUNT OF " + target.ToString() + " SEQUENTIAL THRESHOLD 2",
       }) {
    Result<query::ParsedQuery> parsed = query::ParseQuery(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "  parse error: %s\n",
                   parsed.status().ToString().c_str());
      continue;
    }
    Result<query::QueryResult> r =
        querier.Query(parsed->target, parsed->options);
    if (!r.ok()) continue;
    std::printf("  %s\n    -> count=%lld, %zu leaves, %zu nodes, %llu msgs\n",
                query::FormatQuery(*parsed).c_str(), (long long)r->count,
                r->leaf_tuples.size(), r->nodes.size(),
                (unsigned long long)r->messages);
  }

  // --- threshold-based pruning ---
  std::printf("\nthreshold pruning (deriv-count, sequential, cache off):\n");
  for (int64_t threshold : {0, 1, 2, 4, 8}) {
    query::QueryOptions opts;
    opts.type = query::QueryType::kDerivCount;
    opts.traversal = query::Traversal::kSequential;
    opts.count_threshold = threshold;
    opts.use_cache = false;
    Result<query::QueryResult> r = querier.Query(target, opts);
    if (!r.ok()) continue;
    std::printf("  threshold %2lld: %llu messages, count >= %lld%s\n",
                (long long)threshold, (unsigned long long)r->messages,
                (long long)r->count, r->truncated ? " (pruned)" : "");
  }
  return 0;
}
