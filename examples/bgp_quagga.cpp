// Experiment E5 (Section 3, "Legacy applications"): a multi-AS BGP network
// (the Quagga substitute) whose messages are intercepted by per-node
// proxies; "maybe" rules infer the causal relationships between incoming
// and outgoing route advertisements, and a synthetic RouteViews-style trace
// drives announcements and withdrawals. Derivation histories of routing
// entries are then queried from the provenance.
//
//   $ ./bgp_quagga [n_churn_events]
#include <cstdio>
#include <cstdlib>

#include "src/bgp/speaker.h"
#include "src/bgp/trace_parser.h"
#include "src/bgp/tracegen.h"
#include "src/protocols/programs.h"
#include "src/provenance/graph.h"
#include "src/query/query_engine.h"
#include "src/runtime/plan.h"
#include "src/viz/export.h"

using namespace nettrails;

int main(int argc, char** argv) {
  size_t churn = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;

  // A 12-AS topology: 3 tier-1 ISPs (peering clique), 4 mid-tier ISPs,
  // 5 stubs; customer/provider/peer relationships throughout.
  Rng rng(2011);
  bgp::AsTopology topo = bgp::MakeAsTopology(3, 4, 5, &rng);
  net::Simulator sim;
  topo.Install(&sim);
  std::printf("AS topology: %zu ASes, %zu sessions\n", topo.num_ases,
              topo.links.size());
  for (const bgp::AsLink& l : topo.links) {
    std::printf("  AS%-2u -- AS%-2u  (%u sees %u as %s)\n", l.a, l.b, l.a,
                l.b, bgp::RelationName(l.relation));
  }

  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::BgpMaybeProgram());
  if (!prog.ok()) {
    std::fprintf(stderr, "%s\n", prog.status().ToString().c_str());
    return 1;
  }
  std::printf("\nmaybe-rule program (paper rule br1):\n%s\n",
              protocols::BgpMaybeProgram());

  std::vector<std::unique_ptr<runtime::Engine>> engines;
  std::vector<std::unique_ptr<proxy::Proxy>> proxies;
  std::vector<std::unique_ptr<bgp::Speaker>> speakers;
  for (size_t i = 0; i < topo.num_ases; ++i) {
    engines.push_back(std::make_unique<runtime::Engine>(
        &sim, static_cast<NodeId>(i), *prog));
    proxies.push_back(std::make_unique<proxy::Proxy>(engines.back().get()));
    speakers.push_back(std::make_unique<bgp::Speaker>(
        &sim, static_cast<NodeId>(i), proxies.back().get()));
  }
  for (const bgp::AsLink& l : topo.links) {
    speakers[l.a]->AddNeighbor(l.b, l.relation);
    speakers[l.b]->AddNeighbor(l.a, bgp::Reverse(l.relation));
  }
  query::ProvenanceQuerier querier(&sim, protocols::EnginePtrs(engines));

  // Generate and replay the RouteViews-style trace.
  std::vector<bgp::TraceEvent> trace = bgp::GenerateTrace(topo, churn, &rng);
  std::printf("replaying %zu trace events:\n%s\n", trace.size(),
              bgp::SerializeTrace(trace).c_str());
  for (const bgp::TraceEvent& ev : trace) {
    sim.ScheduleAt(ev.time, [&speakers, ev]() {
      if (ev.withdraw) {
        speakers[ev.origin]->Withdraw(ev.prefix);
      } else {
        speakers[ev.origin]->Originate(ev.prefix);
      }
    });
  }
  sim.Run();

  // Routing state summary.
  uint64_t updates = 0;
  for (const auto& s : speakers) updates += s->updates_sent();
  std::printf("converged after %llu BGP updates; virtual time %llu us\n",
              (unsigned long long)updates, (unsigned long long)sim.now());

  // Pick a tier-1's outputRoute with the longest AS path and explain it.
  for (NodeId as : topo.tier1) {
    Tuple best;
    size_t best_len = 0;
    for (const Tuple& out : engines[as]->TableContents("outputRoute")) {
      size_t len = out.field(3).as_list().size();
      if (len > best_len) {
        best_len = len;
        best = out;
      }
    }
    if (best_len == 0) continue;
    std::printf("\nderivation history of %s at AS%u:\n",
                best.ToString().c_str(), as);
    query::QueryOptions opts;
    opts.type = query::QueryType::kLineage;
    Result<query::QueryResult> lineage = querier.Query(best, opts);
    if (!lineage.ok()) continue;
    for (const std::string& leaf : lineage->leaf_tuples) {
      std::printf("  cause: %s\n", leaf.c_str());
    }
    std::vector<const provenance::ProvStore*> stores;
    for (size_t i = 0; i < engines.size(); ++i) {
      stores.push_back(querier.store(static_cast<NodeId>(i)));
    }
    provenance::Graph g = provenance::BuildGraph(
        stores, best.Location(), best.Hash(),
        [&](Vid vid) { return querier.RenderVid(vid); });
    std::printf("%s", viz::ToTextTree(g, 8).c_str());
    break;
  }

  // Aggregate proxy statistics (the interception layer of Figure 1).
  uint64_t in_seen = 0, out_seen = 0;
  for (const auto& p : proxies) {
    in_seen += p->incoming_seen();
    out_seen += p->outgoing_seen();
  }
  std::printf("\nproxies intercepted %llu incoming and %llu outgoing "
              "messages\n",
              (unsigned long long)in_seen, (unsigned long long)out_seen);
  return 0;
}
