// A scriptable NetTrails console — the batch equivalent of the demo
// station: load an NDlog program, build a topology, converge, then execute
// commands from stdin (or arguments):
//
//   tables <node>                 list materialized tables at a node
//   dump <node> <table>           print a table's tuples
//   query <TEXT QUERY>            e.g. query LINEAGE OF mincost(@0,@3,6)
//   tree <tuple>                  print the provenance tree of a tuple
//   fail <a> <b> <cost>           delete a link (both directions)
//   recover <a> <b> <cost>        re-insert a link
//   verify <tuple>                collect + verify signed evidence (SNP)
//   stats                         engine and traffic statistics
//
// Usage:
//   ./nettrails_console [mincost|pathvector|dsr] [nodes] < script.txt
//   echo "query COUNT OF mincost(@0,@3,6)" | ./nettrails_console
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/provenance/graph.h"
#include "src/provenance/secure.h"
#include "src/query/parser.h"
#include "src/query/query_engine.h"
#include "src/runtime/plan.h"
#include "src/viz/export.h"

using namespace nettrails;

namespace {

const char* ProgramByName(const std::string& name) {
  if (name == "pathvector") return protocols::PathVectorProgram();
  if (name == "dsr") return protocols::DsrProgram();
  return protocols::MincostProgram();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string proto = argc > 1 ? argv[1] : "mincost";
  const size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;

  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(ProgramByName(proto));
  if (!prog.ok()) {
    std::fprintf(stderr, "compile: %s\n", prog.status().ToString().c_str());
    return 1;
  }
  net::Simulator sim;
  net::Topology topo = net::MakeRingWithChords(n, 1, 2);
  auto engines = protocols::MakeEngines(&sim, topo, *prog);
  query::ProvenanceQuerier querier(&sim, protocols::EnginePtrs(engines));
  provenance::KeyAuthority authority(2011);
  if (!protocols::InstallLinks(topo, &engines, &sim).ok()) return 1;
  std::printf("nettrails console: %s on %zu-node ring+chords; reading "
              "commands from stdin\n",
              proto.c_str(), n);

  auto stores = [&]() {
    std::vector<const provenance::ProvStore*> out;
    for (size_t i = 0; i < engines.size(); ++i) {
      out.push_back(querier.store(static_cast<NodeId>(i)));
    }
    return out;
  };
  auto labeler = [&](Vid vid) { return querier.RenderVid(vid); };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string cmd;
    ls >> cmd;
    std::printf("> %s\n", line.c_str());

    if (cmd == "tables") {
      NodeId node = 0;
      ls >> node;
      if (node >= engines.size()) {
        std::printf("  no such node\n");
        continue;
      }
      for (const auto& [name, info] : engines[node]->program().tables) {
        if (!info.materialized) continue;
        const runtime::Table* t = engines[node]->GetTable(name);
        std::printf("  %-16s %zu tuples\n", name.c_str(),
                    t ? t->size() : 0);
      }
    } else if (cmd == "dump") {
      NodeId node = 0;
      std::string table;
      ls >> node >> table;
      if (node >= engines.size()) {
        std::printf("  no such node\n");
        continue;
      }
      for (const Tuple& t : engines[node]->TableContents(table)) {
        std::printf("  %s\n", t.ToString().c_str());
      }
    } else if (cmd == "query") {
      std::string rest;
      std::getline(ls, rest);
      Result<query::ParsedQuery> parsed = query::ParseQuery(rest);
      if (!parsed.ok()) {
        std::printf("  parse error: %s\n",
                    parsed.status().ToString().c_str());
        continue;
      }
      NodeId home = parsed->target.Location();
      if (home < engines.size() && !engines[home]->HasTuple(parsed->target)) {
        std::printf("  (note: tuple not currently present at @%u — "
                    "querying historical/unknown state)\n",
                    home);
      }
      Result<query::QueryResult> r =
          querier.Query(parsed->target, parsed->options);
      if (!r.ok()) {
        std::printf("  query error: %s\n", r.status().ToString().c_str());
        continue;
      }
      if (parsed->options.type == query::QueryType::kLineage) {
        for (const std::string& leaf : r->leaf_tuples) {
          std::printf("  base: %s\n", leaf.c_str());
        }
      } else if (parsed->options.type == query::QueryType::kNodeSet) {
        std::printf("  nodes:");
        for (NodeId p : r->nodes) std::printf(" @%u", p);
        std::printf("\n");
      } else {
        std::printf("  derivations: %lld%s\n", (long long)r->count,
                    r->truncated ? " (pruned/truncated)" : "");
      }
      std::printf("  [%llu msgs, %llu bytes, %llu us]\n",
                  (unsigned long long)r->messages,
                  (unsigned long long)r->bytes,
                  (unsigned long long)r->latency);
    } else if (cmd == "tree") {
      std::string rest;
      std::getline(ls, rest);
      size_t start = rest.find_first_not_of(" \t");
      if (start == std::string::npos) continue;
      Result<Tuple> t = Tuple::Parse(rest.substr(start));
      if (!t.ok() || !t->HasLocation()) {
        std::printf("  bad tuple\n");
        continue;
      }
      provenance::Graph g = provenance::BuildGraph(
          stores(), t->Location(), t->Hash(), labeler);
      std::printf("%s", viz::ToTextTree(g, 12).c_str());
    } else if (cmd == "fail" || cmd == "recover") {
      NodeId a = 0, b = 0;
      int64_t cost = 1;
      ls >> a >> b >> cost;
      Status st = cmd == "fail"
                      ? protocols::FailLink(a, b, cost, &engines, &sim)
                      : protocols::RecoverLink(a, b, cost, &engines, &sim);
      std::printf("  %s\n", st.ok() ? "ok" : st.ToString().c_str());
    } else if (cmd == "verify") {
      std::string rest;
      std::getline(ls, rest);
      size_t start = rest.find_first_not_of(" \t");
      if (start == std::string::npos) continue;
      Result<Tuple> t = Tuple::Parse(rest.substr(start));
      if (!t.ok() || !t->HasLocation()) {
        std::printf("  bad tuple\n");
        continue;
      }
      provenance::Evidence ev = provenance::CollectEvidence(
          stores(), authority, t->Location(), t->Hash());
      provenance::VerifyResult vr =
          provenance::VerifyEvidence(ev, authority, t->Hash());
      std::printf("  evidence: %zu edges, %zu executions -> %s\n",
                  ev.edges.size(), ev.execs.size(),
                  vr.ok ? "VERIFIED" : "REJECTED");
      for (const std::string& p : vr.problems) {
        std::printf("    note: %s\n", p.c_str());
      }
    } else if (cmd == "stats") {
      uint64_t firings = 0, msgs = 0;
      size_t tuples = 0, prov = 0;
      for (const auto& e : engines) {
        firings += e->stats().rule_firings;
        msgs += e->stats().messages_sent;
        tuples += e->TotalTuples(false);
        prov += e->TotalTuples(true);
      }
      std::printf("  rule firings: %llu, messages: %llu, tuples: %zu "
                  "(%zu provenance), virtual time: %llu us\n",
                  (unsigned long long)firings, (unsigned long long)msgs,
                  tuples, prov, (unsigned long long)sim.now());
    } else {
      std::printf("  unknown command\n");
    }
  }
  return 0;
}
