// Experiment E4 (Section 3, "Declarative networks", mobile configuration):
// dynamic source routing on a mobile network. Nodes move on a virtual
// plane; links appear and disappear with proximity; DSR re-discovers routes
// on demand; NetTrails keeps the provenance of every route consistent as
// the topology changes.
//
//   $ ./dsr_mobile [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "src/common/rand.h"
#include "src/protocols/programs.h"
#include "src/provenance/graph.h"
#include "src/query/query_engine.h"
#include "src/runtime/plan.h"
#include "src/viz/export.h"

using namespace nettrails;

namespace {

struct MobileNode {
  double x = 0, y = 0;
  double vx = 0, vy = 0;
};

constexpr double kWorld = 100.0;
constexpr double kRange = 38.0;

bool InRange(const MobileNode& a, const MobileNode& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy) <= kRange;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t steps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const size_t n = 8;

  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::DsrProgram());
  if (!prog.ok()) {
    std::fprintf(stderr, "%s\n", prog.status().ToString().c_str());
    return 1;
  }
  net::Simulator sim;
  std::vector<std::unique_ptr<runtime::Engine>> engines;
  for (size_t i = 0; i < n; ++i) {
    sim.AddNode();
    engines.push_back(std::make_unique<runtime::Engine>(
        &sim, static_cast<NodeId>(i), *prog));
  }
  query::ProvenanceQuerier querier(&sim, protocols::EnginePtrs(engines));

  // Random waypoint-ish mobility.
  Rng rng(7);
  std::vector<MobileNode> nodes(n);
  for (MobileNode& m : nodes) {
    m.x = rng.NextDouble() * kWorld;
    m.y = rng.NextDouble() * kWorld;
    m.vx = (rng.NextDouble() - 0.5) * 22;
    m.vy = (rng.NextDouble() - 0.5) * 22;
  }

  std::set<std::pair<NodeId, NodeId>> live;
  auto sync_links = [&]() {
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = a + 1; b < n; ++b) {
        bool want = InRange(nodes[a], nodes[b]);
        bool have = live.count({a, b}) > 0;
        if (want && !have) {
          sim.AddLink(a, b, net::kMillisecond);
          (void)protocols::RecoverLink(a, b, 1, &engines, &sim,
                                       /*run_to_quiescence=*/false);
          live.insert({a, b});
        } else if (!want && have) {
          (void)protocols::FailLink(a, b, 1, &engines, &sim,
                                    /*run_to_quiescence=*/false);
          live.erase({a, b});
        }
      }
    }
    sim.Run();
  };

  sync_links();
  for (size_t step = 0; step < steps; ++step) {
    std::printf("=== step %zu: %zu live links ===\n", step, live.size());
    // Route discovery 0 -> n-1 under the current topology.
    NodeId src = 0, dst = static_cast<NodeId>(n - 1);
    (void)protocols::StartDsrDiscovery(engines[src].get(), src, dst);
    sim.Run();
    std::vector<Tuple> routes = engines[src]->TableContents("route");
    bool found = false;
    for (const Tuple& r : routes) {
      if (r.field(1).as_address() != dst) continue;
      found = true;
      std::printf("  route: %s\n", r.ToString().c_str());
      // Lineage: the discovery's provenance bottoms out in link state and
      // the originating route request.
      query::QueryOptions opts;
      opts.type = query::QueryType::kLineage;
      Result<query::QueryResult> lineage = querier.Query(r, opts);
      if (lineage.ok()) {
        std::printf("  provenance leaves (%zu):\n",
                    lineage->leaf_tuples.size());
        for (const std::string& leaf : lineage->leaf_tuples) {
          std::printf("    %s\n", leaf.c_str());
        }
      }
      opts.type = query::QueryType::kNodeSet;
      Result<query::QueryResult> participants = querier.Query(r, opts);
      if (participants.ok()) {
        std::printf("  participating nodes:");
        for (NodeId p : participants->nodes) std::printf(" @%u", p);
        std::printf("\n");
      }
    }
    if (!found) {
      std::printf("  no route %u -> %u (partitioned)\n", src, dst);
    }

    // Move nodes; bounce at the world edge; re-sync topology.
    for (MobileNode& m : nodes) {
      m.x += m.vx;
      m.y += m.vy;
      if (m.x < 0 || m.x > kWorld) m.vx = -m.vx;
      if (m.y < 0 || m.y > kWorld) m.vy = -m.vy;
      m.x = std::min(std::max(m.x, 0.0), kWorld);
      m.y = std::min(std::max(m.y, 0.0), kWorld);
    }
    sync_links();
  }

  uint64_t total_prov = 0;
  for (const auto& e : engines) total_prov += e->TotalTuples(true);
  std::printf("=== done: %llu provenance tuples across %zu nodes ===\n",
              (unsigned long long)total_prov, n);
  return 0;
}
