// Experiments E2 + E3 (Figures 2 and 3): the interactive-exploration
// walkthrough of the provenance visualizer, driven programmatically.
//
//   (a) take a system-wide snapshot of a running MINCOST network,
//   (b) select the mincost table at a node,
//   (c) locate one tuple instance and open its provenance,
// then refocus the hypertree with smooth transitions, update a link cost
// mid-run (Figure 3's evolving state), and export DOT/JSON.
//
//   $ ./mincost_exploration [out_dir]
#include <cstdio>
#include <fstream>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/provenance/graph.h"
#include "src/query/query_engine.h"
#include "src/runtime/plan.h"
#include "src/viz/export.h"
#include "src/viz/hypertree.h"
#include "src/viz/log_store.h"

using namespace nettrails;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::MincostProgram());
  if (!prog.ok()) {
    std::fprintf(stderr, "%s\n", prog.status().ToString().c_str());
    return 1;
  }
  net::Simulator sim;
  net::Topology topo = net::MakeRingWithChords(8, 1, 3);
  auto engines = protocols::MakeEngines(&sim, topo, *prog);
  query::ProvenanceQuerier querier(&sim, protocols::EnginePtrs(engines));
  viz::LogStore log(&sim, protocols::EnginePtrs(engines));
  if (!protocols::InstallLinks(topo, &engines, &sim).ok()) return 1;

  // --- (a) system-wide snapshot at time T ---
  const viz::SystemSnapshot& snap = log.CaptureNow();
  std::printf("snapshot at T=%llu us: %zu nodes, %zu links\n",
              (unsigned long long)snap.time, snap.nodes.size(),
              snap.links.size());

  // --- (b) select the mincost table at node 0 ---
  std::vector<Tuple> mincosts = log.TableAt(snap.time, 0, "mincost");
  std::printf("\nmincost table at node 0 (%zu tuples):\n", mincosts.size());
  for (const Tuple& t : mincosts) {
    std::printf("  %s\n", t.ToString().c_str());
  }
  if (mincosts.empty()) return 1;

  // --- (c) locate a particular tuple instance and open its provenance ---
  Tuple target = mincosts[mincosts.size() / 2];
  std::printf("\nselected tuple: %s (vid %016llx, location @%u)\n",
              target.ToString().c_str(),
              (unsigned long long)target.Hash(), target.Location());

  std::vector<const provenance::ProvStore*> stores;
  for (size_t i = 0; i < engines.size(); ++i) {
    stores.push_back(querier.store(static_cast<NodeId>(i)));
  }
  auto labeler = [&](Vid vid) { return querier.RenderVid(vid); };
  provenance::Graph graph = provenance::BuildGraph(
      stores, target.Location(), target.Hash(), labeler);
  std::printf("provenance graph: %zu tuple vertices, %zu rule executions\n",
              graph.tuple_vertices(), graph.exec_vertices());

  // --- hypertree exploration with smooth refocus (Figure 2 a->b->c) ---
  viz::Hypertree ht(graph);
  std::printf("\nhypertree, focus on the root:\n%s\n",
              ht.AsciiRender(56, 24).c_str());
  std::vector<Vid> children = graph.ChildrenOf(graph.root);
  if (!children.empty()) {
    auto frames = ht.TransitionFrames(children[0], 6);
    std::printf("refocused onto child rule execution in %zu smooth frames; "
                "focused vertex now at |z| = %.4f\n",
                frames.size(), std::abs(ht.node(children[0])->pos));
    std::printf("%s\n", ht.AsciiRender(56, 24).c_str());
  }

  // --- Figure 3: state updates change provenance; replay shows it ---
  std::printf("updating link cost 0-1 to 5 mid-run...\n");
  if (!protocols::RecoverLink(0, 1, 5, &engines, &sim).ok()) return 1;
  log.CaptureNow();
  std::vector<Tuple> after = log.TableAt(sim.now(), 0, "mincost");
  std::printf("mincost table at node 0 after the update (%zu tuples):\n",
              after.size());
  for (const Tuple& t : after) std::printf("  %s\n", t.ToString().c_str());

  // --- exports for external viewers ---
  std::ofstream(out_dir + "/mincost_prov.dot") << viz::ToDot(graph);
  std::ofstream(out_dir + "/mincost_prov.json") << viz::ToJson(graph);
  std::printf("\nwrote %s/mincost_prov.dot and .json\n", out_dir.c_str());
  std::printf("\nprovenance tree of the selected tuple:\n%s",
              viz::ToTextTree(graph, 10).c_str());
  return 0;
}
