// Quickstart (Experiment E1 / Figure 1): wires every NetTrails component
// together on a 4-node MINCOST network — declarative protocol execution,
// incremental provenance maintenance, a distributed lineage query, and the
// textual provenance view.
//
//   $ ./quickstart
#include <cstdio>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/provenance/graph.h"
#include "src/query/query_engine.h"
#include "src/runtime/plan.h"
#include "src/viz/export.h"

using namespace nettrails;

int main() {
  // 1. Compile the MINCOST NDlog program; the ExSPAN rewrite adds the
  //    provenance-capturing rules automatically.
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::MincostProgram());
  if (!prog.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 prog.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Rewritten program (excerpt) ===\n");
  std::string dump = (*prog)->Dump();
  std::printf("%.*s...\n\n", 800, dump.c_str());

  // 2. A 4-node line topology; one engine per node.
  net::Simulator sim;
  net::Topology topo = net::MakeLine(4, /*cost=*/2);
  auto engines = protocols::MakeEngines(&sim, topo, *prog);
  query::ProvenanceQuerier querier(&sim, protocols::EnginePtrs(engines));

  // 3. Install link base tuples and run the protocol to convergence.
  if (!protocols::InstallLinks(topo, &engines, &sim).ok()) return 1;
  std::printf("=== mincost table at node 0 ===\n");
  for (const Tuple& t : engines[0]->TableContents("mincost")) {
    std::printf("  %s\n", t.ToString().c_str());
  }

  // 4. Query the provenance of mincost(0 -> 3).
  Tuple target("mincost",
               {Value::Address(0), Value::Address(3), Value::Int(6)});
  query::QueryOptions opts;
  opts.type = query::QueryType::kLineage;
  Result<query::QueryResult> lineage = querier.Query(target, opts);
  if (!lineage.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 lineage.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== lineage of %s ===\n", target.ToString().c_str());
  for (const std::string& leaf : lineage->leaf_tuples) {
    std::printf("  base: %s\n", leaf.c_str());
  }
  std::printf("  (%llu messages, %llu bytes, %llu us of virtual time)\n",
              (unsigned long long)lineage->messages,
              (unsigned long long)lineage->bytes,
              (unsigned long long)lineage->latency);

  opts.type = query::QueryType::kNodeSet;
  Result<query::QueryResult> nodes = querier.Query(target, opts);
  std::printf("\n=== nodes involved in the derivation ===\n  ");
  for (NodeId n : nodes->nodes) std::printf("@%u ", n);
  std::printf("\n");

  opts.type = query::QueryType::kDerivCount;
  Result<query::QueryResult> count = querier.Query(target, opts);
  std::printf("\n=== number of alternative derivations: %lld ===\n",
              (long long)count->count);

  // 5. Assemble and print the provenance tree (the hypertree data source).
  std::vector<const provenance::ProvStore*> stores;
  for (size_t i = 0; i < engines.size(); ++i) {
    stores.push_back(querier.store(static_cast<NodeId>(i)));
  }
  provenance::Graph graph = provenance::BuildGraph(
      stores, target.Location(), target.Hash(),
      [&](Vid vid) { return querier.RenderVid(vid); });
  std::printf("\n=== provenance tree ===\n%s",
              viz::ToTextTree(graph).c_str());
  return 0;
}
